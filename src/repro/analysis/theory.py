"""Theoretical analysis helpers (paper Section 7, Table 6).

Provides evaluators for the complexity bounds of Table 6 and checkers
for Observations 7.1-7.3, so the benchmark suite can verify that
measured set-operation work stays within the analytic envelopes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.graphs.csr import CSRGraph
from repro.graphs.digraph import DiGraph, orient_by_order
from repro.graphs.orientation import degeneracy_order


@dataclass(frozen=True)
class GraphParameters:
    """The symbols the Table 6 bounds are parameterized by."""

    n: int
    m: int
    max_degree: int  # d
    degeneracy: int  # c


def graph_parameters(graph: CSRGraph) -> GraphParameters:
    return GraphParameters(
        n=graph.num_vertices,
        m=graph.num_edges,
        max_degree=graph.max_degree,
        degeneracy=degeneracy_order(graph).degeneracy,
    )


# ---------------------------------------------------------------------------
# Table 6 bounds (up to constant factors)
# ---------------------------------------------------------------------------

def bound_tc_merge(p: GraphParameters) -> float:
    """Triangle counting with merging: O(m c)."""
    return p.m * max(1, p.degeneracy)


def bound_tc_gallop(p: GraphParameters) -> float:
    """Triangle counting with galloping: O(m c log c)."""
    c = max(2, p.degeneracy)
    return p.m * c * math.log2(c)


def bound_kclique_merge(p: GraphParameters, k: int) -> float:
    """k-clique listing with merging: O(k m (c/2)^(k-2))."""
    if k < 2:
        raise ConfigError("k must be at least 2")
    return k * p.m * max(1.0, p.degeneracy / 2) ** (k - 2)


def bound_kclique_gallop(p: GraphParameters, k: int) -> float:
    c = max(2, p.degeneracy)
    return bound_kclique_merge(p, k) * math.log2(c)


def bound_kcliquestar_merge(p: GraphParameters, k: int) -> float:
    """k-clique-star listing: O(k^2 m (c/2)^(k-1))."""
    return k * k * p.m * max(1.0, p.degeneracy / 2) ** (k - 1)


def bound_mc_degeneracy(p: GraphParameters) -> float:
    """Maximal cliques with pivot + degeneracy: O(c n 3^(c/3))."""
    return p.degeneracy * p.n * 3.0 ** (p.degeneracy / 3)


def bound_clustering_merge(p: GraphParameters) -> float:
    """Jarvis-Patrick with merging: O(m d)."""
    return p.m * max(1, p.max_degree)


def bound_clustering_gallop(p: GraphParameters) -> float:
    """Jarvis-Patrick with galloping: O(m c log d)."""
    return p.m * max(1, p.degeneracy) * math.log2(max(2, p.max_degree))


def bound_lp_neighborhood_merge(p: GraphParameters) -> float:
    """Link prediction (neighborhood measures) with merging: O(m d)."""
    return p.m * max(1, p.max_degree)


def bound_lp_neighborhood_gallop(p: GraphParameters) -> float:
    """Link prediction with galloping: O(m c log c)."""
    c = max(2, p.degeneracy)
    return p.m * c * math.log2(c)


# ---------------------------------------------------------------------------
# Observations 7.1 - 7.3
# ---------------------------------------------------------------------------

def check_observation_71(graph: CSRGraph) -> tuple[float, float]:
    """Obs 7.1: sum over edges of min(d(u), d(v)) <= 4 c m.

    Returns (lhs, rhs); callers assert lhs <= rhs.
    """
    params = graph_parameters(graph)
    degrees = graph.degrees
    edges = graph.edge_array()
    if edges.size == 0:
        return 0.0, 0.0
    lhs = float(np.minimum(degrees[edges[:, 0]], degrees[edges[:, 1]]).sum())
    rhs = 4.0 * params.degeneracy * params.m
    return lhs, rhs


def check_observation_72(graph: CSRGraph) -> tuple[float, float]:
    """Obs 7.2: sum over edges of (d(u) + d(v)) = sum_i d(i)^2 <= m d
    (the equality holds by double counting; the bound by Cauchy-ish
    majorization).  Returns (lhs, rhs)."""
    params = graph_parameters(graph)
    degrees = graph.degrees.astype(np.float64)
    lhs = float((degrees**2).sum())
    rhs = 2.0 * params.m * max(1, params.max_degree)
    return lhs, rhs


def check_observation_73(graph: CSRGraph) -> tuple[float, float]:
    """Obs 7.3: for a degeneracy-oriented graph,
    sum over edges of (|N+(u)| + |N+(v)|) <= 2 m c.  Returns (lhs, rhs)."""
    result = degeneracy_order(graph)
    digraph: DiGraph = orient_by_order(graph, result.order)
    out = digraph.out_degrees
    edges = graph.edge_array()
    if edges.size == 0:
        return 0.0, 0.0
    lhs = float((out[edges[:, 0]] + out[edges[:, 1]]).sum())
    rhs = 2.0 * graph.num_edges * max(1, result.degeneracy)
    return lhs, rhs


def merge_work_measured(graph: CSRGraph) -> float:
    """Actual merge work of oriented triangle counting:
    sum over arcs (u,v) of |N+(u)| + |N+(v)| — the quantity Table 6
    bounds by O(m c)."""
    result = degeneracy_order(graph)
    digraph = orient_by_order(graph, result.order)
    total = 0.0
    for u in range(digraph.num_vertices):
        out_u = digraph.out_neighbors(u)
        for v in out_u:
            total += out_u.size + digraph.out_neighbors(int(v)).size
    return total
