"""SessionPool: the multi-tenant serving front-end.

One :class:`~repro.session.session.SisaSession` serves one graph; a
production deployment serves *many* graphs for *many* tenants at once.
:class:`SessionPool` manages that fleet:

* **N sessions, LRU-evicted** — ``pool.session(key, graph)`` returns
  the cached session for ``key`` (creating it on first use); beyond
  ``max_sessions`` the least-recently-used idle session is dropped,
  exactly like the result cache bounds its entries.  A session with
  queued plans is never evicted.
* **Shared SCU memo tables** — every session whose
  :meth:`~repro.session.config.ExecutionConfig.memo_signature` matches
  shares one SCU decision table, so the variant-decision work one
  tenant's workload performs warms every other session on the same
  simulated machine.  The memoized values are pure functions of
  operand shapes and the frozen configs, so sharing is bit-identical —
  it changes Python time, never modeled cycles.
* **Fair round-robin scheduling, accounted per tenant** —
  ``pool.submit(key, workload, tenant=..., **params)`` compiles a
  :class:`~repro.session.plan.WorkloadPlan` (pinning the session's
  stream version); ``pool.run()`` executes everything queued, ordering
  each session's batch round-robin across tenants so no tenant's plans
  monopolize a burst window, and charges every modeled cycle to its
  tenant (``pool.tenant_cycles``) via the engine's per-tenant marks.

On top of that, the serving-hardening layer (:mod:`repro.serving`) is
wired in at three points:

* **Validation at the door** — every ``submit`` compiles through the
  serving rule engine, so malformed requests raise one structured
  :class:`~repro.errors.ValidationError` before a plan exists.
* **Admission control** — with ``quotas``/``default_quota`` (or an
  explicit :class:`~repro.serving.admission.AdmissionController`), each
  ``submit`` gets a deterministic admit/defer/reject decision against
  the tenant's :class:`~repro.serving.admission.TenantQuota`: rejected
  submissions raise :class:`~repro.errors.AdmissionError`; deferred
  plans park in a side queue and are promoted, oldest first, when the
  tenant's queue drains at the next ``run()``.
* **Fault isolation + bounded retry** — passing a
  :class:`~repro.serving.admission.RetryPolicy` (and/or a
  :class:`~repro.serving.faults.FaultInjector`) opts ``run()`` into the
  *hardened* path: each plan executes in its own blast radius, stale
  plans are recompiled at the current stream version, failed attempts
  are retried up to the policy bound with every failed attempt's
  modeled cycles charged to the owning tenant's retry ledger, and a
  plan that exhausts its attempts (or its tenant's budget) yields a
  structured :class:`~repro.session.result.FailedResult` in its result
  slot instead of aborting the batch.  ``pool.health()`` snapshots the
  degradation state.  Without those knobs ``run()`` keeps the strict
  PR 5 semantics bit for bit — any stale plan fails the whole call
  before work starts, and modeled cycles are unchanged.

Finally, ``observability=True`` (or a shared
:class:`~repro.observability.Observability` hub) threads one metrics
registry and span recorder through the whole fleet: every SCU
dispatch, kernel burst, cache event, orientation repair, admission
decision and tenant charge lands in labeled counters/histograms
(``pool.metrics()``, ``pool.metrics_text()``), every
``submit → validate → admit`` and ``run → session → plan → stage →
kernel`` step opens a wall-clock + modeled-cycle span
(``result.spans``, dumpable as Chrome-trace JSON), and
``telemetry_path=`` adds a periodic JSONL sink flushed every
``telemetry_every`` completed plans' worth of ``run()`` calls.  All of
it is observation-only: disabled (the default) no instrumentation
code runs at all, and enabled the modeled cycles and outputs are
bit-identical to the uninstrumented pool.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any

from repro.errors import (
    AdmissionError,
    ConfigError,
    ReproError,
    WorkerCrashError,
)
from repro.observability import JsonlSink, Observability
from repro.serving.admission import AdmissionController, RetryPolicy, TenantQuota
from repro.serving.validation import resolve_execution_config
from repro.session.config import ExecutionConfig
from repro.session.plan import (
    PlanExecutor,
    WorkloadPlan,
    compile_plan,
    failure_reason,
)
from repro.session.result import FailedResult, RunResult
from repro.session.session import SisaSession

_DEFAULT_RETRY = RetryPolicy()


class SessionPool:
    """A bounded fleet of sessions serving a multi-tenant workload mix."""

    def __init__(
        self,
        config: ExecutionConfig | None = None,
        *,
        max_sessions: int = 4,
        fuse: bool = True,
        fuse_width: int = 8,
        quotas: dict[str, TenantQuota] | None = None,
        default_quota: TenantQuota | None = None,
        admission: AdmissionController | None = None,
        retry: RetryPolicy | None = None,
        fault_injector=None,
        observability: bool | Observability | None = None,
        telemetry_path=None,
        telemetry_every: int = 1,
        **overrides: Any,
    ):
        if max_sessions <= 0:
            raise ConfigError("max_sessions must be positive")
        # Override keys go through the serving rule engine: a typo'd
        # knob raises ConfigError naming the bad key in ``details``.
        config = resolve_execution_config(config, overrides)
        if admission is not None and (quotas or default_quota is not None):
            raise ConfigError(
                "pass either an AdmissionController or quotas/default_quota, "
                "not both"
            )
        if admission is None and (quotas or default_quota is not None):
            admission = AdmissionController(quotas, default_quota=default_quota)
        if retry is not None and not isinstance(retry, RetryPolicy):
            raise ConfigError("retry must be a RetryPolicy")
        # One shared observability hub for the whole fleet (or None).
        # Every session created by this pool feeds the same registry
        # and span recorder, so pool.metrics() aggregates across the
        # fleet and one submit→run request yields one span tree.
        if isinstance(observability, Observability):
            hub = observability
        else:
            enabled = (
                config.observability
                if observability is None
                else bool(observability)
            )
            hub = Observability() if enabled else None
        self.obs = hub
        if telemetry_path is not None:
            if hub is None:
                raise ConfigError(
                    "telemetry_path requires observability to be enabled"
                )
            hub.sink = JsonlSink(telemetry_path, every=telemetry_every)
        if admission is not None:
            admission.obs = hub
        self.config = config
        self.max_sessions = max_sessions
        self.fuse = fuse
        self.fuse_width = fuse_width
        self.admission = admission
        self.retry = retry
        self.fault_injector = fault_injector
        self._sessions: OrderedDict[Any, SisaSession] = OrderedDict()
        self._memos: dict[tuple, dict] = {}
        # Queued (submit_index, session_key, plan) triples.
        self._pending: list[tuple[int, Any, WorkloadPlan]] = []
        # Admission-deferred triples, promoted at the next run().
        self._deferred: list[tuple[int, Any, WorkloadPlan]] = []
        self._submitted = 0
        self._tenant_cycles: dict[str, float] = {}
        self._tenant_retry_cycles: dict[str, float] = {}
        self._tenant_runs: dict[str, int] = {}
        self.evictions = 0
        self._completed = 0
        self._failed = 0
        self._retries = 0
        self._drift_recompiles = 0
        self._wasted_cycles = 0.0
        self._worker_crashes = 0
        # The CertifiedSchedule each session's batch ran under in the
        # most recent scheduled run() (session key → schedule), with
        # measured per-node costs — what-if lane models read from here.
        self.last_schedules: dict[Any, Any] = {}
        # The reconciled ParallelReport of each session's most recent
        # parallel=True run (session key → report); health() reads the
        # lane-utilization and shard-balance fields from here.
        self.last_parallel: dict[Any, Any] = {}
        # One ShardRuntime per session key under parallel=True, reused
        # across run() calls (the worker spawn cost amortizes).
        self._runtimes: dict[Any, Any] = {}
        # Parallel-execution knobs (read when a runtime is created;
        # adjust before the first parallel run).
        self.parallel_policy = "degree"
        self.parallel_offload_threshold: int | None = None

    @property
    def _hardened(self) -> bool:
        """True when run() takes the isolation/retry path.  Opt-in via
        the retry/fault_injector knobs — the default strict path keeps
        the PR 5 all-or-nothing semantics bit for bit."""
        return self.retry is not None or self.fault_injector is not None

    # ------------------------------------------------------------------
    # Session management
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._sessions)

    def __contains__(self, key: Any) -> bool:
        return key in self._sessions

    @property
    def session_keys(self) -> tuple:
        """Resident session keys, least- to most-recently used."""
        return tuple(self._sessions)

    def session(
        self,
        key: Any,
        graph=None,
        *,
        config: ExecutionConfig | None = None,
    ) -> SisaSession:
        """The pool's session for ``key`` (most-recently-used after the
        call).  ``graph`` is required the first time a key is seen;
        ``config`` optionally overrides the pool default for that
        session."""
        existing = self._sessions.get(key)
        if existing is not None:
            if graph is not None and existing.graph is not graph:
                raise ConfigError(
                    f"session key {key!r} is already bound to a different "
                    "graph; use a distinct key per graph"
                )
            self._sessions.move_to_end(key)
            return existing
        if graph is None:
            raise ConfigError(
                f"unknown session key {key!r}; pass the graph to create it"
            )
        cfg = config or self.config
        memo = self._memos.setdefault(cfg.memo_signature(), {})
        session = SisaSession(
            graph, cfg, decision_memo=memo, observability=self.obs
        )
        self._sessions[key] = session
        self._evict()
        return session

    def _evict(self) -> None:
        """Drop least-recently-used idle sessions past the bound.

        Sessions with queued or deferred plans are pinned (their
        compiled plans hold the session and its sets); the pool may
        transiently exceed ``max_sessions`` until those drain."""
        busy = {key for __, key, __ in self._pending}
        busy.update(key for __, key, __ in self._deferred)
        while len(self._sessions) > self.max_sessions:
            victim = next(
                (k for k in self._sessions if k not in busy), None
            )
            if victim is None or victim == next(reversed(self._sessions)):
                return
            del self._sessions[victim]
            self._drop_runtime(victim)
            self.evictions += 1

    def _drop_runtime(self, key: Any) -> None:
        """Close and forget the shard runtime bound to ``key``."""
        runtime = self._runtimes.pop(key, None)
        if runtime is not None:
            runtime.close()

    def _runtime_for(self, key: Any, session: SisaSession, shards: int):
        """The cached shard runtime for ``key``, (re)built when the
        session object or the shard width changed."""
        from repro.parallel.workers import (
            DEFAULT_OFFLOAD_THRESHOLD,
            ShardRuntime,
        )

        runtime = self._runtimes.get(key)
        if runtime is not None and (
            runtime.closed
            or runtime.session is not session
            or runtime.shards != shards
        ):
            self._drop_runtime(key)
            runtime = None
        if runtime is None:
            threshold = self.parallel_offload_threshold
            runtime = ShardRuntime(
                session,
                shards,
                policy=self.parallel_policy,
                offload_threshold=(
                    DEFAULT_OFFLOAD_THRESHOLD
                    if threshold is None
                    else threshold
                ),
            )
            self._runtimes[key] = runtime
        return runtime

    def close(self) -> None:
        """Shut down every shard worker runtime (idempotent).  Safe to
        skip — runtimes also tear down via GC finalizers — but explicit
        shutdown makes worker exit deterministic in tests and CLIs."""
        for key in list(self._runtimes):
            self._drop_runtime(key)

    # ------------------------------------------------------------------
    # Submitting and running plans
    # ------------------------------------------------------------------

    def submit(
        self,
        key: Any,
        workload: str,
        *,
        tenant: str = "default",
        graph=None,
        **params: Any,
    ) -> WorkloadPlan:
        """Compile ``workload`` against ``key``'s session and queue the
        plan under ``tenant``.  Returns the plan (its stream version is
        pinned now; a stream that advances before :meth:`run` makes the
        plan fail fast).

        The request validates through the serving rule engine before a
        plan exists (:class:`~repro.errors.ValidationError` on a bad
        name, parameter or domain), then — when the pool has admission
        control — through the tenant's quota: a rejected submission
        raises :class:`~repro.errors.AdmissionError` and a deferred one
        parks until the tenant's queue drains at the next :meth:`run`.
        """
        rec = self.obs.spans if self.obs is not None else None
        span = (
            rec.start("submit", {"tenant": tenant, "workload": workload})
            if rec is not None
            else None
        )
        try:
            session = self.session(key, graph)
            plan = compile_plan(session, workload, params, tenant=tenant)
            if self.admission is not None:
                aspan = rec.start("admit") if rec is not None else None
                try:
                    decision = self.admission.decide(
                        tenant,
                        queued=self._tenant_queued(tenant),
                        deferred=self._tenant_deferred(tenant),
                        spent=self._spent(tenant),
                    )
                finally:
                    if rec is not None:
                        rec.end(aspan)
                if decision.action == "reject":
                    raise AdmissionError(
                        f"tenant {tenant!r} submission rejected "
                        f"({decision.reason}) for workload {workload!r}",
                        details={
                            "tenant": tenant,
                            "workload": workload,
                            "reason": decision.reason,
                            **decision.details,
                        },
                    )
                if decision.action == "defer":
                    self._deferred.append((self._submitted, key, plan))
                    self._submitted += 1
                    return plan
            self._pending.append((self._submitted, key, plan))
            self._submitted += 1
            return plan
        finally:
            if rec is not None:
                rec.end(span)

    @property
    def pending(self) -> int:
        return len(self._pending)

    @property
    def deferred(self) -> int:
        """Plans parked by admission control, awaiting promotion."""
        return len(self._deferred)

    def _tenant_queued(self, tenant: str) -> int:
        return sum(
            1
            for __, __, p in self._pending
            if (p.tenant or "default") == tenant
        )

    def _tenant_deferred(self, tenant: str) -> int:
        return sum(
            1
            for __, __, p in self._deferred
            if (p.tenant or "default") == tenant
        )

    def _spent(self, tenant: str) -> float:
        """The tenant's total budget draw: useful plus retry cycles."""
        return self._tenant_cycles.get(tenant, 0.0) + self._tenant_retry_cycles.get(
            tenant, 0.0
        )

    def _promote_deferred(self) -> None:
        """Move parked plans into the main queue, oldest first, up to
        each tenant's queue-depth limit and only while its budget
        lasts.  Runs at the top of every :meth:`run`, so a drained
        queue pulls deferred work in deterministically."""
        if not self._deferred:
            return
        assert self.admission is not None  # repolint: disable=library-assert -- plans only defer via admission
        depth: dict[str, int] = {}
        for __, __, p in self._pending:
            t = p.tenant or "default"
            depth[t] = depth.get(t, 0) + 1
        still: list[tuple[int, Any, WorkloadPlan]] = []
        promoted: list[tuple[int, Any, WorkloadPlan]] = []
        for entry in self._deferred:
            tenant = entry[2].tenant or "default"
            quota = self.admission.quota(tenant)
            if self.admission.budget_exhausted(tenant, self._spent(tenant)):
                still.append(entry)
                continue
            if (
                quota is not None
                and quota.max_queue_depth is not None
                and depth.get(tenant, 0) >= quota.max_queue_depth
            ):
                still.append(entry)
                continue
            depth[tenant] = depth.get(tenant, 0) + 1
            promoted.append(entry)
        if promoted:
            self._pending = sorted(self._pending + promoted)
            self._deferred = still

    def discard_stale(self) -> list[WorkloadPlan]:
        """Drop queued or deferred plans whose stream drifted past
        their pinned version (returns them, so callers can resubmit
        recompiled replacements)."""
        stale = [plan for __, __, plan in self._pending if plan.stale]
        stale += [plan for __, __, plan in self._deferred if plan.stale]
        if stale:
            self._pending = [e for e in self._pending if not e[2].stale]
            self._deferred = [e for e in self._deferred if not e[2].stale]
        return stale

    def run(
        self,
        *,
        verify: bool = False,
        lanes: int | None = None,
        racecheck: bool = False,
        parallel: bool = False,
    ) -> list[RunResult | FailedResult]:
        """Execute every queued plan; results in submission order.

        ``verify=True`` runs the static hazard verifier
        (:func:`repro.analysis.static.analyze_batch`) over each
        session's batch before execution: a batch that cannot be
        certified hazard-free raises
        :class:`~repro.errors.HazardError` in strict mode, or fails
        the offending plans structurally in hardened mode.

        ``lanes=N`` (and/or ``racecheck=True``, which defaults the
        width to 4) takes the **scheduled** path: each session's batch
        is lowered into a
        :class:`~repro.analysis.static.schedule.CertifiedSchedule`
        (implying full static verification — an uncertifiable batch
        raises :class:`~repro.errors.HazardError`) and executed in the
        schedule's topological order, recording measured per-node costs
        back into the schedule (kept on :attr:`last_schedules` for
        what-if lane modeling).  With ``racecheck=True`` the replay
        additionally runs under the happens-before race detector
        (:mod:`repro.analysis.static.racecheck`): the session's shared
        structures and this pool's tenant ledgers are shimmed into an
        access log, and any unordered conflicting access pair raises a
        structured :class:`~repro.errors.RaceError`.  Scheduled
        execution is strict-mode only (outputs must stay bit-identical
        to the sequential reference; retry/fault paths would fork the
        comparison).

        Per session, the batch is ordered round-robin across tenants
        (first tenant's first plan, second tenant's first plan, ...,
        first tenant's second plan, ...) so burst windows interleave
        fairly; each plan's modeled cycles are charged to its tenant.

        **Strict mode** (no retry policy, no fault injector — the
        default): stale plans fail the whole call *before anything
        executes* (nothing is dequeued; :meth:`discard_stale` drops
        them, or resubmit recompiled plans).  On any other executor
        error, plans that did not complete stay queued.

        **Hardened mode** (a :class:`RetryPolicy` and/or
        :class:`FaultInjector` was configured): each plan runs in its
        own blast radius.  Stale plans are recompiled at the current
        version, failed attempts are retried up to the policy bound
        (failed-attempt cycles charged to the owning tenant's retry
        ledger), budget-exhausted tenants' plans never start, and a
        plan the pool gives up on yields a
        :class:`~repro.session.result.FailedResult` in its slot — no
        exception escapes for a plan failure.

        ``parallel=True`` (implies the scheduled path; default width 4
        when ``lanes`` is not given) executes each certified schedule
        on the sharded worker subsystem (:mod:`repro.parallel`): one
        worker process per lane owns one shard of the vertex universe,
        count bursts fan out for per-shard partial counts merged in
        fixed shard order, and the run reconciles its modeled cycles
        exactly against ``schedule.what_if(lanes)`` plus the host merge
        charges.  Outputs, per-tenant ledgers and modeled cycles are
        bit-identical to the sequential scheduled run.  A worker crash
        yields structured ``FailedResult(reason="worker-crash")`` slots
        for the session's unfinished plans instead of a hang; other
        sessions' batches still run.
        """
        scheduled = lanes is not None or racecheck or parallel
        if scheduled and self._hardened:
            raise ConfigError(
                "scheduled execution (lanes/racecheck/parallel) is "
                "strict-mode only; drop the retry policy / fault injector"
            )
        self._promote_deferred()
        obs = self.obs
        rec = obs.spans if obs is not None else None
        span = (
            rec.start("run", {"pending": len(self._pending)})
            if rec is not None
            else None
        )
        try:
            if scheduled:
                results = self._run_scheduled(
                    lanes=lanes if lanes is not None else 4,
                    racecheck=racecheck,
                    parallel=parallel,
                )
            elif self._hardened:
                results = self._run_hardened(verify=verify)
            else:
                results = self._run_strict(verify=verify)
        finally:
            if rec is not None:
                rec.end(span)
        if obs is not None:
            obs.run_done()
            if obs.sink is not None:
                obs.flush_sink(self.health().as_dict(), self._completed)
        return results

    def _run_strict(self, *, verify: bool = False) -> list[RunResult]:
        # Fail fast on drift before any tenant's work starts — one
        # tenant's stale plan must not cost another tenant's computed
        # results.
        for __, __, plan in self._pending:
            plan.check_version()
        pending, self._pending = self._pending, []
        by_session: OrderedDict[Any, list] = OrderedDict()
        for idx, key, plan in pending:
            by_session.setdefault(key, []).append((idx, plan))
        results: dict[int, RunResult] = {}
        rec = self.obs.spans if self.obs is not None else None
        try:
            for key, entries in by_session.items():
                session = self._sessions[key]
                ordered = _round_robin_by_tenant(entries)
                sspan = (
                    rec.start(f"session:{key}", {"plans": len(ordered)})
                    if rec is not None
                    else None
                )
                try:
                    executor = PlanExecutor(
                        session,
                        fuse=self.fuse,
                        fuse_width=self.fuse_width,
                        verify=verify,
                    )
                    for (idx, plan), result in zip(
                        ordered,
                        executor.execute([plan for __, plan in ordered]),
                    ):
                        results[idx] = result
                        self._charge(plan.tenant or "default", result)
                finally:
                    if rec is not None:
                        rec.end(sspan)
        except BaseException:
            # Re-queue everything that has no result yet, ahead of any
            # plans submitted by an exception handler in the meantime.
            self._pending = [
                e for e in pending if e[0] not in results
            ] + self._pending
            raise
        self._evict()
        return [results[idx] for idx, __, __ in pending]

    def _run_scheduled(
        self, *, lanes: int, racecheck: bool, parallel: bool = False
    ) -> list[RunResult | FailedResult]:
        """Certify each session's batch into a dependency-DAG schedule
        and execute it in topological order, optionally under the race
        detector and/or on the sharded worker subsystem.  Strict drift
        semantics: any stale plan fails the whole call before work
        starts.  Under ``parallel=True`` a worker crash degrades only
        the owning session's batch (structured ``"worker-crash"``
        failures); it does not abort the call."""
        # Deferred import: analysis is outside the serving hot path.
        from repro.analysis.static.racecheck import (
            AccessLog,
            find_races,
            instrument_pool_ledgers,
            instrument_session,
            raise_on_races,
        )
        from repro.analysis.static.schedule import certify_schedule

        for __, __, plan in self._pending:
            plan.check_version()
        pending, self._pending = self._pending, []
        by_session: OrderedDict[Any, list] = OrderedDict()
        for idx, key, plan in pending:
            by_session.setdefault(key, []).append((idx, plan))
        results: dict[int, RunResult | FailedResult] = {}
        self.last_schedules = {}
        if parallel:
            self.last_parallel = {}
        rec = self.obs.spans if self.obs is not None else None
        try:
            for key, entries in by_session.items():
                session = self._sessions[key]
                ordered = _round_robin_by_tenant(entries)
                plans = [plan for __, plan in ordered]
                sspan = (
                    rec.start(f"session:{key}", {"plans": len(ordered)})
                    if rec is not None
                    else None
                )
                try:
                    cspan = (
                        rec.start("schedule:certify", {"lanes": lanes})
                        if rec is not None
                        else None
                    )
                    try:
                        schedule = certify_schedule(
                            plans, lanes=lanes, fuse_width=self.fuse_width
                        )
                    finally:
                        if rec is not None:
                            rec.end(cspan)
                    self.last_schedules[key] = schedule
                    log = AccessLog() if racecheck else None
                    rspan = (
                        rec.start(
                            "racecheck:replay", {"nodes": len(schedule)}
                        )
                        if rec is not None and racecheck
                        else None
                    )
                    try:
                        if parallel:
                            from repro.parallel.executor import (
                                ParallelExecutor,
                            )

                            executor = ParallelExecutor(
                                session,
                                fuse_width=self.fuse_width,
                                schedule=schedule,
                                access_log=log,
                                runtime=self._runtime_for(
                                    key, session, lanes
                                ),
                                lanes=lanes,
                            )
                        else:
                            executor = PlanExecutor(
                                session,
                                fuse_width=self.fuse_width,
                                schedule=schedule,
                                access_log=log,
                            )
                        try:
                            if racecheck:
                                with instrument_session(session, log), \
                                        instrument_pool_ledgers(self, log):
                                    batch = executor.execute(plans)
                                    for (idx, plan), result in zip(
                                        ordered, batch
                                    ):
                                        results[idx] = result
                                        self._charge(
                                            plan.tenant or "default", result
                                        )
                                raise_on_races(
                                    find_races(schedule, log),
                                    context=f"session {key!r} scheduled "
                                    f"replay (lanes={lanes})",
                                )
                            else:
                                for (idx, plan), result in zip(
                                    ordered, executor.execute(plans)
                                ):
                                    results[idx] = result
                                    self._charge(
                                        plan.tenant or "default", result
                                    )
                        except WorkerCrashError as exc:
                            # The dead worker pool poisons only this
                            # session's batch: unfinished plans get a
                            # structured failure slot, the runtime is
                            # torn down (a fresh one spawns on the next
                            # parallel run), other sessions proceed.
                            self._drop_runtime(key)
                            for idx, plan in ordered:
                                if idx in results:
                                    continue
                                self._failed += 1
                                self._worker_crashes += 1
                                results[idx] = FailedResult(
                                    workload=plan.name,
                                    params=dict(plan.params),
                                    tenant=plan.tenant or "default",
                                    reason="worker-crash",
                                    error=exc,
                                    attempts=1,
                                    details=dict(exc.details),
                                )
                        else:
                            if parallel:
                                self.last_parallel[key] = executor.report
                    finally:
                        if rec is not None and rspan is not None:
                            rec.end(rspan)
                finally:
                    if rec is not None:
                        rec.end(sspan)
        except BaseException:
            self._pending = [
                e for e in pending if e[0] not in results
            ] + self._pending
            raise
        self._evict()
        return [results[idx] for idx, __, __ in pending]

    def _run_hardened(
        self, *, verify: bool = False
    ) -> list[RunResult | FailedResult]:
        pending, self._pending = self._pending, []
        by_session: OrderedDict[Any, list] = OrderedDict()
        for idx, key, plan in pending:
            by_session.setdefault(key, []).append((idx, plan))
        results: dict[int, RunResult | FailedResult] = {}
        rec = self.obs.spans if self.obs is not None else None
        try:
            for key, entries in by_session.items():
                session = self._sessions[key]
                ordered = _round_robin_by_tenant(entries)
                sspan = (
                    rec.start(f"session:{key}", {"plans": len(ordered)})
                    if rec is not None
                    else None
                )
                try:
                    if self.fault_injector is not None:
                        self.fault_injector.before_batch(
                            session, [plan for __, plan in ordered]
                        )
                    for idx, plan in ordered:
                        results[idx] = self._run_plan_hardened(
                            session, plan, verify=verify
                        )
                finally:
                    if rec is not None:
                        rec.end(sspan)
        except BaseException:
            # Only non-recoverable interrupts reach here (plan failures
            # become FailedResults); keep unfinished work queued.
            self._pending = [
                e for e in pending if e[0] not in results
            ] + self._pending
            raise
        self._evict()
        return [results[idx] for idx, __, __ in pending]

    def _run_plan_hardened(
        self, session: SisaSession, plan: WorkloadPlan, *, verify: bool = False
    ) -> RunResult | FailedResult:
        """One plan, isolated: budget gate → (re)compile if stale →
        attempt → on failure charge the wasted cycles to the tenant's
        retry ledger and try again, up to the policy bound."""
        tenant = plan.tenant or "default"
        retry = self.retry if self.retry is not None else _DEFAULT_RETRY
        injector = self.fault_injector
        current = plan
        attempts = 0
        plan_retry_cycles = 0.0
        last_exc: BaseException | None = None
        while attempts < retry.max_attempts:
            if self.admission is not None and self.admission.budget_exhausted(
                tenant, self._spent(tenant)
            ):
                self._failed += 1
                return FailedResult(
                    workload=plan.name,
                    params=dict(plan.params),
                    tenant=plan.tenant,
                    reason="budget-exhausted",
                    error=last_exc,
                    attempts=attempts,
                    retry_cycles=plan_retry_cycles,
                    details={
                        "tenant": tenant,
                        "spent_cycles": self._spent(tenant),
                        "cycle_budget": self.admission.quota(tenant).cycle_budget,
                    },
                )
            if current.stale:
                if not retry.recompile_on_drift:
                    self._failed += 1
                    return FailedResult(
                        workload=plan.name,
                        params=dict(plan.params),
                        tenant=plan.tenant,
                        reason="drift",
                        error=last_exc,
                        attempts=attempts,
                        retry_cycles=plan_retry_cycles,
                        details={
                            "pinned_version": current.version,
                            "stream_version": session._version,
                        },
                    )
                current = compile_plan(
                    session,
                    current.name,
                    dict(current.params),
                    tenant=current.tenant,
                )
                self._drift_recompiles += 1
            if injector is not None:
                injector.before_plan(session, current)
            mark = session.ctx.mark()
            executor = PlanExecutor(
                session,
                fuse=self.fuse,
                fuse_width=self.fuse_width,
                fault_injector=injector,
                verify=verify,
            )
            try:
                (result,) = executor.execute([current])
            except ReproError as exc:
                # The retry loop handles only the package's own failure
                # taxonomy (injected faults, drift, hazards, validation)
                # — a foreign exception is a bug, not a transient, and
                # propagates to the caller instead of burning retries.
                attempts += 1
                last_exc = exc
                wasted = _report_work_cycles(session.ctx.report_since(mark))
                plan_retry_cycles += wasted
                self._wasted_cycles += wasted
                self._tenant_retry_cycles[tenant] = (
                    self._tenant_retry_cycles.get(tenant, 0.0) + wasted
                )
                if self.obs is not None:
                    self.obs.charge_retry(tenant, wasted)
                if attempts < retry.max_attempts:
                    self._retries += 1
                continue
            self._charge(tenant, result)
            return result
        self._failed += 1
        return FailedResult(
            workload=plan.name,
            params=dict(plan.params),
            tenant=plan.tenant,
            reason=failure_reason(current, last_exc),
            error=last_exc,
            attempts=attempts,
            retry_cycles=plan_retry_cycles,
            details={"tenant": tenant, "max_attempts": retry.max_attempts},
        )

    def _charge(self, tenant: str, result: RunResult) -> None:
        # The hub mirror performs the same float addition in the same
        # order as the ledger dict, so pool.metrics() tenant counters
        # equal pool.tenant_cycles *exactly* (not just approximately).
        w = _work_cycles(result)
        self._tenant_cycles[tenant] = (
            self._tenant_cycles.get(tenant, 0.0) + w
        )
        self._tenant_runs[tenant] = self._tenant_runs.get(tenant, 0) + 1
        self._completed += 1
        if self.obs is not None:
            self.obs.charge(tenant, w)

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------

    @property
    def tenant_cycles(self) -> dict[str, float]:
        """Modeled work cycles charged to each tenant across every
        ``run()`` so far (the pool's fairness ledger)."""
        return dict(self._tenant_cycles)

    @property
    def tenant_retry_cycles(self) -> dict[str, float]:
        """Modeled cycles each tenant spent on failed attempts (also
        counted against its budget)."""
        return dict(self._tenant_retry_cycles)

    @property
    def tenant_runs(self) -> dict[str, int]:
        """Plans completed per tenant."""
        return dict(self._tenant_runs)

    def metrics(self) -> dict:
        """One JSON-safe snapshot of the pool's observability hub:
        every metric family's series, the per-tenant processed-set-size
        histograms (the paper's Fig. 9b, aggregated per tenant) and the
        span recorder's counters.  Raises
        :class:`~repro.errors.ConfigError` when observability is off —
        an empty snapshot would be indistinguishable from an idle
        pool."""
        if self.obs is None:
            raise ConfigError(
                "observability is not enabled on this pool; construct it "
                "with observability=True (or an Observability hub)"
            )
        return self.obs.metrics()

    def metrics_text(self) -> str:
        """The hub's registry in Prometheus text exposition format."""
        if self.obs is None:
            raise ConfigError(
                "observability is not enabled on this pool; construct it "
                "with observability=True (or an Observability hub)"
            )
        return self.obs.prometheus_text()

    def health(self):
        """One immutable :class:`~repro.serving.health.HealthSnapshot`
        of the pool: queues, failure/retry/degradation counters,
        injector tallies, per-session cache and orientation state, and
        each tenant's budget position."""
        from repro.serving.health import HealthSnapshot, TenantHealth

        cache_corruptions = 0
        cache_evictions = 0
        orientation_resyncs = 0
        for session in self._sessions.values():
            stats = session.cache_stats
            cache_corruptions += stats.corruptions
            cache_evictions += stats.evictions
            maintainer = session.orientation_maintainer
            if maintainer is not None:
                orientation_resyncs += maintainer.stats.resyncs
        names = set(self._tenant_cycles) | set(self._tenant_retry_cycles)
        names.update(p.tenant or "default" for __, __, p in self._pending)
        names.update(p.tenant or "default" for __, __, p in self._deferred)
        rejections: dict[str, int] = {}
        if self.admission is not None:
            rejections = self.admission.rejections
            names.update(rejections)
        tenants = []
        for name in sorted(names):
            quota = (
                self.admission.quota(name) if self.admission is not None else None
            )
            tenants.append(
                TenantHealth(
                    tenant=name,
                    cycles=self._tenant_cycles.get(name, 0.0),
                    retry_cycles=self._tenant_retry_cycles.get(name, 0.0),
                    queued=self._tenant_queued(name),
                    deferred=self._tenant_deferred(name),
                    rejections=rejections.get(name, 0),
                    cycle_budget=quota.cycle_budget if quota is not None else None,
                )
            )
        injected = (
            dict(self.fault_injector.injected)
            if self.fault_injector is not None
            else {}
        )
        lane_max = 0.0
        lane_means: list[float] = []
        shard_vertices: tuple = ()
        for report in self.last_parallel.values():
            lane_max = max(lane_max, report.lane_max_occupancy)
            lane_means.append(report.lane_mean_occupancy)
            shard_vertices = report.shard_vertices
        return HealthSnapshot(
            sessions=len(self._sessions),
            pending=len(self._pending),
            deferred=len(self._deferred),
            completed=self._completed,
            failed=self._failed,
            retries=self._retries,
            drift_recompiles=self._drift_recompiles,
            wasted_cycles=self._wasted_cycles,
            rejections=sum(rejections.values()),
            cache_corruptions=cache_corruptions,
            cache_evictions=cache_evictions,
            orientation_resyncs=orientation_resyncs,
            lane_max_occupancy=lane_max,
            lane_mean_occupancy=(
                sum(lane_means) / len(lane_means) if lane_means else 0.0
            ),
            shard_vertices=shard_vertices,
            worker_crashes=self._worker_crashes,
            injected_faults=injected,
            tenants=tuple(tenants),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return (
            f"SessionPool(sessions={len(self._sessions)}/{self.max_sessions}, "
            f"pending={len(self._pending)}, tenants={sorted(self._tenant_cycles)})"
        )


def _round_robin_by_tenant(entries):
    """Interleave ``(idx, plan)`` entries fairly across tenants,
    preserving each tenant's own submission order."""
    queues: OrderedDict[str, list] = OrderedDict()
    for entry in entries:
        queues.setdefault(entry[1].tenant or "default", []).append(entry)
    ordered = []
    while queues:
        for tenant in list(queues):
            queue = queues[tenant]
            ordered.append(queue.pop(0))
            if not queue:
                del queues[tenant]
    return ordered


def _report_work_cycles(report) -> float:
    """Total modeled work in one engine report delta: all lanes summed
    plus the sequential overhead (``runtime_cycles`` folds the latter
    on top of the slowest lane)."""
    lanes = report.lane_times
    sequential = report.runtime_cycles - (max(lanes) if lanes else 0.0)
    return float(sum(lanes) + sequential)


def _work_cycles(result: RunResult) -> float:
    """Total modeled work attributed to one plan run.  This is the
    fairness currency; the makespan lives in ``report.runtime_cycles``."""
    return _report_work_cycles(result.report)
