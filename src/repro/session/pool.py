"""SessionPool: the multi-tenant serving front-end.

One :class:`~repro.session.session.SisaSession` serves one graph; a
production deployment serves *many* graphs for *many* tenants at once.
:class:`SessionPool` manages that fleet:

* **N sessions, LRU-evicted** — ``pool.session(key, graph)`` returns
  the cached session for ``key`` (creating it on first use); beyond
  ``max_sessions`` the least-recently-used idle session is dropped,
  exactly like the result cache bounds its entries.  A session with
  queued plans is never evicted.
* **Shared SCU memo tables** — every session whose
  :meth:`~repro.session.config.ExecutionConfig.memo_signature` matches
  shares one SCU decision table, so the variant-decision work one
  tenant's workload performs warms every other session on the same
  simulated machine.  The memoized values are pure functions of
  operand shapes and the frozen configs, so sharing is bit-identical —
  it changes Python time, never modeled cycles.
* **Fair round-robin scheduling, accounted per tenant** —
  ``pool.submit(key, workload, tenant=..., **params)`` compiles a
  :class:`~repro.session.plan.WorkloadPlan` (pinning the session's
  stream version); ``pool.run()`` executes everything queued, ordering
  each session's batch round-robin across tenants so no tenant's plans
  monopolize a burst window, and charges every modeled cycle to its
  tenant (``pool.tenant_cycles``) via the engine's per-tenant marks.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any

from repro.errors import ConfigError
from repro.session.config import ExecutionConfig
from repro.session.plan import PlanExecutor, WorkloadPlan
from repro.session.result import RunResult
from repro.session.session import SisaSession


class SessionPool:
    """A bounded fleet of sessions serving a multi-tenant workload mix."""

    def __init__(
        self,
        config: ExecutionConfig | None = None,
        *,
        max_sessions: int = 4,
        fuse: bool = True,
        fuse_width: int = 8,
        **overrides: Any,
    ):
        if max_sessions <= 0:
            raise ConfigError("max_sessions must be positive")
        if config is not None and overrides:
            config = config.replace(**overrides)
        elif config is None:
            config = ExecutionConfig(**overrides)
        self.config = config
        self.max_sessions = max_sessions
        self.fuse = fuse
        self.fuse_width = fuse_width
        self._sessions: OrderedDict[Any, SisaSession] = OrderedDict()
        self._memos: dict[tuple, dict] = {}
        # Queued (submit_index, session_key, plan) triples.
        self._pending: list[tuple[int, Any, WorkloadPlan]] = []
        self._submitted = 0
        self._tenant_cycles: dict[str, float] = {}
        self._tenant_runs: dict[str, int] = {}
        self.evictions = 0

    # ------------------------------------------------------------------
    # Session management
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._sessions)

    def __contains__(self, key: Any) -> bool:
        return key in self._sessions

    @property
    def session_keys(self) -> tuple:
        """Resident session keys, least- to most-recently used."""
        return tuple(self._sessions)

    def session(
        self,
        key: Any,
        graph=None,
        *,
        config: ExecutionConfig | None = None,
    ) -> SisaSession:
        """The pool's session for ``key`` (most-recently-used after the
        call).  ``graph`` is required the first time a key is seen;
        ``config`` optionally overrides the pool default for that
        session."""
        existing = self._sessions.get(key)
        if existing is not None:
            if graph is not None and existing.graph is not graph:
                raise ConfigError(
                    f"session key {key!r} is already bound to a different "
                    "graph; use a distinct key per graph"
                )
            self._sessions.move_to_end(key)
            return existing
        if graph is None:
            raise ConfigError(
                f"unknown session key {key!r}; pass the graph to create it"
            )
        cfg = config or self.config
        memo = self._memos.setdefault(cfg.memo_signature(), {})
        session = SisaSession(graph, cfg, decision_memo=memo)
        self._sessions[key] = session
        self._evict()
        return session

    def _evict(self) -> None:
        """Drop least-recently-used idle sessions past the bound.

        Sessions with queued plans are pinned (their compiled plans
        hold the session and its sets); the pool may transiently exceed
        ``max_sessions`` until those drain."""
        busy = {key for __, key, __ in self._pending}
        while len(self._sessions) > self.max_sessions:
            victim = next(
                (k for k in self._sessions if k not in busy), None
            )
            if victim is None or victim == next(reversed(self._sessions)):
                return
            del self._sessions[victim]
            self.evictions += 1

    # ------------------------------------------------------------------
    # Submitting and running plans
    # ------------------------------------------------------------------

    def submit(
        self,
        key: Any,
        workload: str,
        *,
        tenant: str = "default",
        graph=None,
        **params: Any,
    ) -> WorkloadPlan:
        """Compile ``workload`` against ``key``'s session and queue the
        plan under ``tenant``.  Returns the plan (its stream version is
        pinned now; a stream that advances before :meth:`run` makes the
        plan fail fast)."""
        from repro.session.plan import compile_plan

        session = self.session(key, graph)
        plan = compile_plan(session, workload, params, tenant=tenant)
        self._pending.append((self._submitted, key, plan))
        self._submitted += 1
        return plan

    @property
    def pending(self) -> int:
        return len(self._pending)

    def discard_stale(self) -> list[WorkloadPlan]:
        """Drop queued plans whose stream drifted past their pinned
        version (returns them, so callers can resubmit recompiled
        replacements)."""
        stale = [plan for __, __, plan in self._pending if plan.stale]
        if stale:
            self._pending = [e for e in self._pending if not e[2].stale]
        return stale

    def run(self) -> list[RunResult]:
        """Execute every queued plan; results in submission order.

        Per session, the batch is ordered round-robin across tenants
        (first tenant's first plan, second tenant's first plan, ...,
        first tenant's second plan, ...) so burst windows interleave
        fairly; each plan's modeled cycles are charged to its tenant.

        Stale plans fail the whole call *before anything executes*
        (nothing is dequeued; :meth:`discard_stale` drops them, or
        resubmit recompiled plans).  On any other executor error, plans
        that did not complete stay queued.
        """
        # Fail fast on drift before any tenant's work starts — one
        # tenant's stale plan must not cost another tenant's computed
        # results.
        for __, __, plan in self._pending:
            plan.check_version()
        pending, self._pending = self._pending, []
        by_session: OrderedDict[Any, list] = OrderedDict()
        for idx, key, plan in pending:
            by_session.setdefault(key, []).append((idx, plan))
        results: dict[int, RunResult] = {}
        try:
            for key, entries in by_session.items():
                session = self._sessions[key]
                ordered = _round_robin_by_tenant(entries)
                executor = PlanExecutor(
                    session, fuse=self.fuse, fuse_width=self.fuse_width
                )
                for (idx, plan), result in zip(
                    ordered, executor.execute([plan for __, plan in ordered])
                ):
                    results[idx] = result
                    tenant = plan.tenant or "default"
                    self._tenant_cycles[tenant] = self._tenant_cycles.get(
                        tenant, 0.0
                    ) + _work_cycles(result)
                    self._tenant_runs[tenant] = (
                        self._tenant_runs.get(tenant, 0) + 1
                    )
        except BaseException:
            # Re-queue everything that has no result yet, ahead of any
            # plans submitted by an exception handler in the meantime.
            self._pending = [
                e for e in pending if e[0] not in results
            ] + self._pending
            raise
        self._evict()
        return [results[idx] for idx, __, __ in pending]

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------

    @property
    def tenant_cycles(self) -> dict[str, float]:
        """Modeled work cycles charged to each tenant across every
        ``run()`` so far (the pool's fairness ledger)."""
        return dict(self._tenant_cycles)

    @property
    def tenant_runs(self) -> dict[str, int]:
        """Plans completed per tenant."""
        return dict(self._tenant_runs)

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return (
            f"SessionPool(sessions={len(self._sessions)}/{self.max_sessions}, "
            f"pending={len(self._pending)}, tenants={sorted(self._tenant_cycles)})"
        )


def _round_robin_by_tenant(entries):
    """Interleave ``(idx, plan)`` entries fairly across tenants,
    preserving each tenant's own submission order."""
    queues: OrderedDict[str, list] = OrderedDict()
    for entry in entries:
        queues.setdefault(entry[1].tenant or "default", []).append(entry)
    ordered = []
    while queues:
        for tenant in list(queues):
            queue = queues[tenant]
            ordered.append(queue.pop(0))
            if not queue:
                del queues[tenant]
    return ordered


def _work_cycles(result: RunResult) -> float:
    """Total modeled work attributed to one plan run: all lanes summed
    plus the run's sequential overhead (``runtime_cycles`` folds the
    latter on top of the slowest lane).  This is the fairness currency;
    the makespan lives in ``report.runtime_cycles``."""
    lanes = result.report.lane_times
    sequential = result.report.runtime_cycles - (max(lanes) if lanes else 0.0)
    return float(sum(lanes) + sequential)
