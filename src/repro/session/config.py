"""ExecutionConfig: the single home of every execution knob.

Before the session API, the same ~10 keyword arguments (``threads``,
``mode``, ``t``, ``budget``, ``policy``, ``gallop_threshold``,
``smb_enabled``, ``hw``, ``cpu``, ``trace``, ``batch``) were copy-pasted
across ``run_algorithm`` and every algorithm entry point.  They now live
in one frozen, validated dataclass; a :class:`SisaSession` is configured
once and every run inherits the configuration.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any

from repro.errors import ConfigError
from repro.hw.config import CpuConfig, HardwareConfig

MODES = ("sisa", "cpu-set")
POLICIES = ("fraction", "threshold")


@dataclass(frozen=True)
class ExecutionConfig:
    """Everything that shapes how a session executes workloads.

    Machine knobs (``SisaContext`` construction):

    * ``threads`` — simulated thread lanes (paper: up to 32),
    * ``mode`` — ``"sisa"`` (PIM offload) or ``"cpu-set"`` (host
      ``_set-based`` baseline),
    * ``hw`` / ``cpu`` — hardware parameter overrides,
    * ``gallop_threshold`` — merge-vs-galloping crossover override,
    * ``smb_enabled`` — Set Metadata Buffer cache on/off,
    * ``trace`` — per-instruction trace recording.

    Graph-structure knobs (``SetGraph`` construction, paper Section 6.1):

    * ``t`` — DB bias (fraction or threshold, per ``policy``),
    * ``budget`` — extra-storage budget as a fraction of the all-SA
      footprint,
    * ``policy`` — ``"fraction"`` or ``"threshold"``.

    Execution-style knobs:

    * ``batch`` — default for workloads that support batched
      instruction bursts (individual runs may override per call),
    * ``result_cache`` — cache registered-workload outputs keyed on
      (workload, params, stream version), so repeated identical runs
      on an unchanged graph are O(1) (``session.invalidate_results()``
      drops entries explicitly; mutations invalidate by key),
    * ``result_cache_size`` — LRU bound on cached outputs.

    Observability:

    * ``observability`` — when True, sessions and pools build an
      :class:`~repro.observability.Observability` hub and feed it from
      every layer (SCU dispatch, kernel bursts, caches, admission,
      orientation maintenance).  Observation-only: modeled cycles and
      outputs are bit-identical either way, so the knob is deliberately
      *not* part of :meth:`memo_signature`.
    """

    threads: int = 32
    mode: str = "sisa"
    t: float = 0.4
    budget: float = 0.1
    policy: str = "fraction"
    gallop_threshold: float | None = None
    smb_enabled: bool = True
    hw: HardwareConfig | None = None
    cpu: CpuConfig | None = None
    trace: bool = False
    batch: bool = True
    result_cache: bool = True
    result_cache_size: int = 128
    observability: bool = False

    def __post_init__(self) -> None:
        if self.threads <= 0:
            raise ConfigError("threads must be positive")
        if self.mode not in MODES:
            raise ConfigError(f"mode must be one of {MODES}, got {self.mode!r}")
        if not 0.0 <= self.t <= 1.0:
            raise ConfigError("t must be in [0, 1]")
        if self.budget < 0.0:
            raise ConfigError("budget must be non-negative")
        if self.policy not in POLICIES:
            raise ConfigError(
                f"policy must be one of {POLICIES}, got {self.policy!r}"
            )
        if self.result_cache_size <= 0:
            raise ConfigError("result_cache_size must be positive")

    # ------------------------------------------------------------------

    def replace(self, **changes: Any) -> "ExecutionConfig":
        """A copy with some knobs changed (validation re-runs)."""
        return dataclasses.replace(self, **changes)

    def make_context(
        self, *, decision_memo: dict | None = None, observability=None
    ):
        """Build a fresh simulated machine from the machine knobs.

        ``decision_memo`` optionally injects a shared SCU decision
        table (session pools share one per machine signature; the
        memoized values are pure functions of operand shapes and these
        frozen configs, so sharing is bit-identical).  ``observability``
        optionally wires an :class:`~repro.observability.Observability`
        hub into the context and its SCU (observation-only)."""
        from repro.runtime.context import SisaContext

        return SisaContext(
            threads=self.threads,
            mode=self.mode,
            hw=self.hw,
            cpu=self.cpu,
            gallop_threshold=self.gallop_threshold,
            smb_enabled=self.smb_enabled,
            trace=self.trace,
            decision_memo=decision_memo,
            observability=observability,
        )

    def memo_signature(self) -> tuple:
        """The machine signature under which SCU decision tables may be
        shared: two configs with equal signatures produce bit-identical
        variant decisions and model costs for every operand shape."""
        from repro.hw.config import CpuConfig, HardwareConfig

        return (
            self.mode,
            self.hw or HardwareConfig(),
            self.cpu or CpuConfig(),
            self.gallop_threshold,
        )

    def describe(self) -> dict[str, Any]:
        """A plain-dict echo of the knobs (for RunResult reporting)."""
        return {
            "threads": self.threads,
            "mode": self.mode,
            "t": self.t,
            "budget": self.budget,
            "policy": self.policy,
            "gallop_threshold": self.gallop_threshold,
            "smb_enabled": self.smb_enabled,
            "hw": self.hw,
            "cpu": self.cpu,
            "trace": self.trace,
            "batch": self.batch,
            "result_cache": self.result_cache,
            "result_cache_size": self.result_cache_size,
            "observability": self.observability,
        }
