"""The workload registry: uniform names for every session workload.

A *workload* is a named, session-aware entry point: it receives the
owning :class:`~repro.session.session.SisaSession` plus its own keyword
parameters, pulls whatever cached structure it needs (undirected or
degeneracy-oriented SetGraph, the live stream, a snapshot view) and
returns its functional output.  Registration is declarative::

    @workload("triangles", requires="oriented", view_capable=True)
    def _triangles(session, *, batch=None, view=None):
        ...

``session.run("triangles")`` then dispatches through the registry and
wraps the output in a uniform :class:`~repro.session.result.RunResult`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.errors import ConfigError

REQUIRES = ("none", "undirected", "oriented", "both")


@dataclass(frozen=True)
class WorkloadSpec:
    """One registry entry."""

    name: str
    fn: Callable[..., Any]
    description: str
    # Which cached structure the workload reads: one of REQUIRES, or a
    # callable mapping the run's params to one (for workloads whose
    # needs depend on a parameter, e.g. kclique_star's variant).
    requires: str | Callable[[dict], str]
    view_capable: bool  # can run against a snapshot / dynamic view

    def requires_for(self, params: dict) -> str:
        req = self.requires(params) if callable(self.requires) else self.requires
        if req not in REQUIRES:
            raise ConfigError(f"requires must be one of {REQUIRES}, got {req!r}")
        return req


_REGISTRY: dict[str, WorkloadSpec] = {}


def workload(
    name: str,
    *,
    requires: str | Callable[[dict], str] = "undirected",
    view_capable: bool = False,
    description: str = "",
) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
    """Register a session workload under ``name``."""
    if not callable(requires) and requires not in REQUIRES:
        raise ConfigError(f"requires must be one of {REQUIRES}")

    def decorate(fn: Callable[..., Any]) -> Callable[..., Any]:
        if name in _REGISTRY:
            raise ConfigError(f"workload {name!r} is already registered")
        doc_line = next(iter((fn.__doc__ or "").strip().splitlines()), "")
        _REGISTRY[name] = WorkloadSpec(
            name=name,
            fn=fn,
            description=description or doc_line,
            requires=requires,
            view_capable=view_capable,
        )
        return fn

    return decorate


def _ensure_default_workloads() -> None:
    """Load the built-in workload definitions.

    Deferred (not imported by ``repro.session``'s ``__init__``) because
    the definitions import the algorithm kernels, whose modules import
    ``repro.session`` for their deprecated one-shot shims.
    """
    import repro.session.workloads  # noqa: F401  (registration side effect)


def get_workload(name: str) -> WorkloadSpec:
    _ensure_default_workloads()
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ConfigError(
            f"unknown workload {name!r}; available: {known}"
        ) from None


def available_workloads() -> dict[str, str]:
    """Mapping of registered workload names to their descriptions."""
    _ensure_default_workloads()
    return {name: _REGISTRY[name].description for name in sorted(_REGISTRY)}
