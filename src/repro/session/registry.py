"""The workload registry: uniform names for every session workload.

A *workload* is a named, session-aware entry point: it receives the
owning :class:`~repro.session.session.SisaSession` plus its own keyword
parameters, pulls whatever cached structure it needs (undirected or
degeneracy-oriented SetGraph, the live stream, a snapshot view) and
returns its functional output.  Registration is declarative::

    @workload("triangles", requires="oriented", view_capable=True)
    def _triangles(session, *, batch=None, view=None):
        ...

``session.run("triangles")`` then dispatches through the registry and
wraps the output in a uniform :class:`~repro.session.result.RunResult`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.errors import ConfigError, SisaError

REQUIRES = ("none", "undirected", "oriented", "both")


@dataclass(frozen=True)
class WorkloadSpec:
    """One registry entry."""

    name: str
    fn: Callable[..., Any]
    description: str
    # Which cached structure the workload reads: one of REQUIRES, or a
    # callable mapping the run's params to one (for workloads whose
    # needs depend on a parameter, e.g. kclique_star's variant).
    requires: str | Callable[[dict], str]
    view_capable: bool  # can run against a snapshot / dynamic view
    # Optional stage compiler: ``stages(session, params)`` returns the
    # declarative :class:`~repro.session.plan.PlanStage` list a
    # :class:`~repro.session.plan.WorkloadPlan` executes.  Workloads
    # without one compile to a single opaque call stage (not fusable,
    # but still schedulable/dedupable as a whole).
    stages: Callable[[Any, dict], list] | None = None
    # Optional parameter normalizer: ``normalize(session, params)``
    # returns the semantically-resolved parameter dict used for result
    # cache / dedup keys (e.g. ``batch=None`` resolved against the
    # session config), so every spelling of the same request shares one
    # key.  Defaults to the raw params.
    normalize: Callable[[Any, dict], dict] | None = None
    # Names of the cached sub-requests this workload's plan stages may
    # seed from (beyond its own name) — e.g. clustering_coefficient
    # reads the "triangles" entry.  ``session.invalidate_results(name)``
    # drops these too, so an explicitly invalidated workload can never
    # be "recomputed" from a sub-request the caller meant to discard.
    subrequests: tuple[str, ...] = ()
    # Effect declarations for workloads *without* a stage compiler: the
    # opaque call stage the fallback compiler emits carries these tokens
    # (namespaces of repro.analysis.static.effects) so the hazard
    # verifier can still reason about the kernel — e.g. a kernel that
    # registers and releases its own temporary sets declares
    # ``effect_writes=("sets:scratch",)``.  Stage-compiled workloads
    # declare effects per stage instead.
    effect_reads: tuple[str, ...] = ()
    effect_writes: tuple[str, ...] = ()

    def requires_for(self, params: dict) -> str:
        req = self.requires(params) if callable(self.requires) else self.requires
        if req not in REQUIRES:
            raise ConfigError(f"requires must be one of {REQUIRES}, got {req!r}")
        return req


_REGISTRY: dict[str, WorkloadSpec] = {}


def workload(
    name: str,
    *,
    requires: str | Callable[[dict], str] = "undirected",
    view_capable: bool = False,
    description: str = "",
    stages: Callable[[Any, dict], list] | None = None,
    normalize: Callable[[Any, dict], dict] | None = None,
    subrequests: tuple[str, ...] = (),
    effect_reads: tuple[str, ...] = (),
    effect_writes: tuple[str, ...] = (),
    replace: bool = False,
) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
    """Register a session workload under ``name``.

    Re-registering an existing name raises
    :class:`~repro.errors.SisaError` unless ``replace=True`` is passed
    explicitly — a silent overwrite would let a plugin shadow a
    built-in (and invalidate compiled plans holding the old spec)
    without any signal.
    """
    if not callable(requires) and requires not in REQUIRES:
        raise ConfigError(f"requires must be one of {REQUIRES}")

    def decorate(fn: Callable[..., Any]) -> Callable[..., Any]:
        if name in _REGISTRY and not replace:
            raise SisaError(
                f"workload {name!r} is already registered; pass "
                "replace=True to overwrite it deliberately"
            )
        doc_line = next(iter((fn.__doc__ or "").strip().splitlines()), "")
        _REGISTRY[name] = WorkloadSpec(
            name=name,
            fn=fn,
            description=description or doc_line,
            requires=requires,
            view_capable=view_capable,
            stages=stages,
            normalize=normalize,
            subrequests=subrequests,
            effect_reads=effect_reads,
            effect_writes=effect_writes,
        )
        return fn

    return decorate


def _ensure_default_workloads() -> None:
    """Load the built-in workload definitions.

    Deferred (not imported by ``repro.session``'s ``__init__``) because
    the definitions import the algorithm kernels, whose modules import
    ``repro.session`` for their deprecated one-shot shims.
    """
    import repro.session.workloads  # noqa: F401  (registration side effect)


def get_workload(name: str) -> WorkloadSpec:
    _ensure_default_workloads()
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ConfigError(
            f"unknown workload {name!r}; available: {known}"
        ) from None


def available_workloads() -> dict[str, str]:
    """Mapping of registered workload names to their descriptions."""
    _ensure_default_workloads()
    return {name: _REGISTRY[name].description for name in sorted(_REGISTRY)}
