"""SisaSession: the persistent software layer over one graph.

The paper's Fig. 3 software layer is a *persistent* runtime — set
storage, SMB state and representation decisions live across queries.
A :class:`SisaSession` makes the public API match: it owns one
:class:`~repro.runtime.context.SisaContext` for the lifetime of the
graph and lazily builds + caches the expensive derived structures

* the undirected :class:`~repro.runtime.setgraph.SetGraph`,
* the degeneracy order, and
* the degeneracy-oriented ``SetGraph`` (``N+`` sets),

so repeated runs of any workload skip all setup.  Each ``run`` is
bracketed by engine epoch marks (:meth:`SisaContext.mark`), so a warm
session still reports every run's own cycles, instruction stats and
set registrations in a uniform :class:`RunResult`.

Streaming workloads bind a
:class:`~repro.streaming.graph.DynamicSetGraph` to the same context via
:meth:`attach_stream`; snapshot analytics route through the same
:meth:`run` path (``session.run("triangles", view=snap)``).
"""

from __future__ import annotations

from typing import Any, Callable

from repro.errors import ConfigError, SisaError
from repro.graphs.csr import CSRGraph
from repro.graphs.digraph import DiGraph, orient_by_order
from repro.graphs.orientation import DegeneracyResult, degeneracy_order
from repro.runtime.setgraph import SetGraph
from repro.serving.validation import resolve_execution_config, validate_request
from repro.session.cache import CacheStats, ResultCache
from repro.session.config import ExecutionConfig
from repro.session.registry import WorkloadSpec, get_workload
from repro.session.result import RunResult


class SisaSession:
    """A long-lived workload runner bound to one graph + one machine.

    ::

        session = SisaSession(graph, ExecutionConfig(threads=32))
        cold = session.run("triangles")       # builds orientation + sets
        warm = session.run("triangles")       # reuses everything
        assert warm.output == cold.output

    Configuration can also be given as keyword overrides::

        SisaSession(graph, threads=8, mode="cpu-set")
    """

    def __init__(
        self,
        graph: CSRGraph,
        config: ExecutionConfig | None = None,
        *,
        decision_memo: dict | None = None,
        observability=None,
        **overrides: Any,
    ):
        # ``observability`` accepts a bool (folded into the config) or
        # a shared :class:`~repro.observability.Observability` hub (a
        # SessionPool passes its own, so every session feeds one
        # registry/span recorder).
        if isinstance(observability, bool):
            overrides.setdefault("observability", observability)
            observability = None
        # Override keys are validated by the serving rule engine before
        # any dataclass machinery sees them: a typo'd knob fails with a
        # ConfigError naming the bad key in ``details`` instead of a
        # bare TypeError (one code path shared with SessionPool).
        config = resolve_execution_config(config, overrides)
        self.graph = graph
        self.config = config
        if observability is None and config.observability:
            from repro.observability import Observability

            observability = Observability()
        self.obs = observability
        # ``decision_memo`` lets a SessionPool share one SCU decision
        # table across all sessions with the same machine configuration
        # (memoized values are pure functions of operand shapes and the
        # fixed configs, so sharing is bit-identical; see Scu).
        self.ctx = config.make_context(
            decision_memo=decision_memo, observability=observability
        )
        self.run_count = 0
        self._setgraph: SetGraph | None = None
        self._degeneracy: DegeneracyResult | None = None
        self._degeneracy_version: tuple[int, int] | None = None
        self._digraph: DiGraph | None = None
        self._oriented: SetGraph | None = None
        self._oriented_version: tuple[int, int] | None = None
        self._csr_cache: CSRGraph | None = None
        self._csr_version: tuple[int, int] | None = None
        self._stream = None
        self._orientation_maintainer = None
        self._digraph_key = None
        self._results = ResultCache(maxsize=config.result_cache_size)
        self._results.obs = observability

    # ------------------------------------------------------------------
    # Cached derived structures
    # ------------------------------------------------------------------

    @property
    def epoch(self) -> int:
        """The stream epoch the session's graph state is at (0 when no
        stream is attached)."""
        return self._stream.epoch if self._stream is not None else 0

    @property
    def _version(self) -> tuple[int, int]:
        """Cache key for the stream state: (epoch, mutation count).

        The mutation count invalidates derived caches even for updates
        applied *mid-batch* (before ``finish_batch`` advances the
        epoch), so static runs never mix a stale CSR/orientation with
        the live mutated sets.
        """
        if self._stream is None:
            return (0, 0)
        return self._stream.version

    @property
    def current_graph(self) -> CSRGraph:
        """The CSR view of the current graph state.

        Identical to the construction graph until an attached stream
        mutates it; then it is rebuilt (model-internal, uncharged —
        graph loading is outside the measured region) and cached per
        stream version.
        """
        if self._stream is None or self._version == (0, 0):
            return self.graph
        if self._csr_version != self._version:
            edges = self._stream.edge_array()
            self._csr_cache = CSRGraph.from_edges(
                self._stream.num_vertices, edges
            )
            self._csr_version = self._version
        if self._csr_cache is None:  # pragma: no cover - internal invariant
            raise SisaError(
                "internal error: CSR cache missing after rebuild",
                details={
                    "version": list(self._version),
                    "csr_version": list(self._csr_version),
                },
            )
        return self._csr_cache

    @property
    def setgraph(self) -> SetGraph:
        """The undirected neighborhood SetGraph (built once).

        When a stream is attached it shares set IDs with the
        :class:`DynamicSetGraph`, so it always reflects the live state.
        """
        if self._setgraph is None:
            self._setgraph = SetGraph.from_graph(
                self.graph,
                self.ctx,
                t=self.config.t,
                budget=self.config.budget,
                policy=self.config.policy,
            )
        return self._setgraph

    @property
    def degeneracy(self) -> DegeneracyResult:
        """The degeneracy order of the current graph state (cached per
        stream version; host-side work, charges nothing — as in the
        one-shot path)."""
        if self._degeneracy is None or self._degeneracy_version != self._version:
            self._degeneracy = degeneracy_order(self.current_graph)
            self._degeneracy_version = self._version
        return self._degeneracy

    def _orientation_is_current(self) -> bool:
        """True when the attached orientation maintainer has fully
        incorporated every stream mutation."""
        maintainer = self._orientation_maintainer
        return (
            maintainer is not None
            and maintainer.synced_mutations == self._stream.mutations
        )

    @property
    def oriented_setgraph(self) -> SetGraph:
        """The degeneracy-oriented ``N+`` SetGraph.

        With an orientation maintainer attached
        (:meth:`maintain_orientation`) the maintained sets are returned
        directly — no re-peel, no rebuild — after any epoch advance
        that streamed through the maintainer hooks; updates applied
        outside the hooks trigger a (charged) maintainer resync.
        Without a maintainer the orientation is rebuilt per stream
        version, as before.
        """
        maintainer = self._orientation_maintainer
        if maintainer is not None:
            if not self._orientation_is_current():
                maintainer.resync()
            self._oriented_version = self._version
            return maintainer.oriented
        if self._oriented is None or self._oriented_version != self._version:
            if self._oriented is not None:
                self._release_setgraph(self._oriented)
            self._digraph = orient_by_order(
                self.current_graph, self.degeneracy.order
            )
            self._oriented = SetGraph.from_digraph(
                self._digraph,
                self.ctx,
                t=self.config.t,
                budget=self.config.budget,
                policy=self.config.policy,
            )
            self._oriented_version = self._version
        return self._oriented

    @property
    def digraph(self) -> DiGraph:
        maintainer = self._orientation_maintainer
        if maintainer is not None:
            self.oriented_setgraph  # ensure synced
            key = (self._version, maintainer.revision)
            if self._digraph is None or self._digraph_key != key:
                self._digraph = maintainer.export_digraph()
                self._digraph_key = key
            return self._digraph
        self.oriented_setgraph  # ensure built
        if self._digraph is None:  # pragma: no cover - internal invariant
            raise SisaError(
                "internal error: orientation built without its DiGraph",
                details={"version": list(self._version)},
            )
        return self._digraph

    def _release_setgraph(self, sg: SetGraph) -> None:
        """Drop a stale derived SetGraph's SM entries.

        Registration was uncharged (graph loading); teardown of a stale
        epoch's orientation is likewise model-internal.
        """
        for sid in sg.set_ids:
            self.ctx.release(sid)

    # ------------------------------------------------------------------
    # Streaming
    # ------------------------------------------------------------------

    def attach_stream(self, *, dense_bits: float = 1.0, sparse_bits: float = 0.25):
        """Bind a :class:`DynamicSetGraph` over the session's sets.

        The dynamic view shares set IDs with :attr:`setgraph`, so every
        undirected workload automatically sees the evolving state;
        orientation-based workloads re-orient when the epoch advances.
        Returns the dynamic graph (drive it directly or through a
        :class:`~repro.streaming.engine.StreamingEngine`).
        """
        from repro.streaming.graph import DynamicSetGraph

        if self._stream is not None:
            raise ConfigError("a stream is already attached to this session")
        self._stream = DynamicSetGraph(
            self.setgraph, dense_bits=dense_bits, sparse_bits=sparse_bits
        )
        return self._stream

    @property
    def stream(self):
        """The attached :class:`DynamicSetGraph` (raises if none)."""
        if self._stream is None:
            raise ConfigError(
                "no stream attached; call session.attach_stream() first"
            )
        return self._stream

    def snapshot(self):
        """Capture the attached stream's current epoch as a consistent
        read-only view (copy-on-write)."""
        return self.stream.snapshot()

    def maintain_orientation(self, *, eps: float = 0.5, repair_limit: int = 64):
        """Keep the session's oriented ``N+`` sets warm across stream
        epochs.

        Subscribes an
        :class:`~repro.streaming.orientation.IncrementalOrientation`
        maintainer to the attached stream: every batch applied through
        :meth:`DynamicSetGraph.apply_batch` or a
        :class:`~repro.streaming.engine.StreamingEngine` updates the
        cached orientation in place (orienting new edges by the current
        rank, repairing only on drift past ``(2 + eps) * c``), so
        ``session.run("triangles")`` after an epoch advance reuses the
        maintained orientation instead of re-peeling.  Returns the
        maintainer (its ``stats`` record which batches re-peeled).
        """
        from repro.streaming.orientation import IncrementalOrientation

        stream = self.stream  # raises ConfigError when none attached
        existing = self._orientation_maintainer
        if existing is not None:
            if (existing.eps, existing.repair_limit) != (eps, repair_limit):
                raise ConfigError(
                    "an orientation maintainer with different parameters "
                    f"(eps={existing.eps}, repair_limit="
                    f"{existing.repair_limit}) is already attached"
                )
            return existing
        oriented = self.oriented_setgraph  # build at the current version
        maintainer = IncrementalOrientation(
            stream,
            oriented,
            self.degeneracy,
            eps=eps,
            repair_limit=repair_limit,
        )
        maintainer.obs = self.obs
        stream.subscribe(maintainer)
        self._orientation_maintainer = maintainer
        return maintainer

    @property
    def orientation_maintainer(self):
        """The attached orientation maintainer, or ``None``."""
        return self._orientation_maintainer

    @property
    def orientation_stats(self):
        """The orientation maintainer's
        :class:`~repro.streaming.orientation.OrientationStats` (raises
        when no maintainer is attached)."""
        if self._orientation_maintainer is None:
            raise ConfigError(
                "no orientation maintainer; call "
                "session.maintain_orientation() first"
            )
        return self._orientation_maintainer.stats

    # ------------------------------------------------------------------
    # Result cache
    # ------------------------------------------------------------------

    @property
    def cache_stats(self) -> CacheStats:
        """Hit/miss accounting of the session's result cache."""
        return self._results.stats

    def invalidate_results(self, workload: str | None = None) -> int:
        """Explicitly drop cached results (all of them, or one
        workload's).  Returns the number of entries dropped.  Stream
        mutations invalidate implicitly — the stream version is part of
        every cache key — so this is only needed when state *outside*
        the session changed (e.g. a parameter object was mutated in
        place).

        Per-workload invalidation also drops the sub-request entries
        the workload's plan stages may seed from (declared on
        ``WorkloadSpec.subrequests``, e.g. the triangle count inside
        ``clustering_coefficient``) — otherwise a fused re-run would
        quietly rebuild the "invalidated" result from a cached piece of
        it."""
        if workload is None:
            return self._results.invalidate(None)
        names = {workload}
        try:
            names.update(get_workload(workload).subrequests)
        except ConfigError:
            pass  # unregistered name: drop its own entries only
        return sum(self._results.invalidate(name) for name in names)

    # ------------------------------------------------------------------
    # Running workloads
    # ------------------------------------------------------------------

    def _is_warm(self, spec: WorkloadSpec, view, params: dict) -> bool:
        if view is not None:
            return self.run_count > 0
        requires = spec.requires_for(params)
        undirected_ready = self._setgraph is not None
        oriented_ready = (
            self._oriented is not None and self._oriented_version == self._version
        ) or self._orientation_is_current()
        if requires == "undirected":
            return undirected_ready
        if requires == "oriented":
            return oriented_ready
        if requires == "both":
            return undirected_ready and oriented_ready
        return self.run_count > 0  # "none"

    def compile(self, workload: str, **params: Any):
        """Compile a registered workload into a
        :class:`~repro.session.plan.WorkloadPlan`.

        Compilation is declarative — no instructions issue and no
        cached structure is built — and pins the session's current
        stream version; executing a stale plan raises
        :class:`~repro.errors.SisaError`.  Plans are the unit the
        batch executors schedule: ``session.run_many([...])`` over one
        graph, :meth:`~repro.session.pool.SessionPool.submit` across
        graphs.
        """
        from repro.session.plan import compile_plan

        return compile_plan(self, workload, params)

    def run_many(
        self,
        plans,
        *,
        fuse: bool = True,
        fuse_width: int = 8,
        isolate: bool = False,
        fault_injector=None,
        verify: bool = False,
    ) -> list[RunResult]:
        """Execute a batch of plans and return their
        :class:`RunResult`\\ s in batch order.

        Items may be :class:`WorkloadPlan` objects (from
        :meth:`compile`), workload names, or ``(name, params)`` pairs
        (compiled on the spot).  With ``fuse=True`` the executor shares
        prep once per graph, dedups identical sub-requests through the
        result cache before any instruction issues, and fuses
        compatible count-form frontier bursts from different plans into
        shared macro dispatches; with ``fuse=False`` the batch executes
        plan by plan, bit-identical to sequential :meth:`run` calls.

        ``isolate=True`` gives each plan its own blast radius: a plan
        that raises yields a structured
        :class:`~repro.session.result.FailedResult` in its slot instead
        of aborting the batch (no retries — that is the
        :class:`~repro.session.pool.SessionPool`'s job).
        ``fault_injector`` threads a serving
        :class:`~repro.serving.faults.FaultInjector` into the executor
        for soak testing.  ``verify=True`` statically certifies the
        batch hazard-free (:func:`repro.analysis.static.analyze_batch`)
        before anything executes, raising
        :class:`~repro.errors.HazardError` on failure.
        """
        from repro.session.plan import PlanExecutor, WorkloadPlan

        compiled = []
        for item in plans:
            if isinstance(item, WorkloadPlan):
                compiled.append(item)
            elif isinstance(item, str):
                compiled.append(self.compile(item))
            else:
                name, params = item
                compiled.append(self.compile(name, **params))
        executor = PlanExecutor(
            self,
            fuse=fuse,
            fuse_width=fuse_width,
            fault_injector=fault_injector,
            verify=verify,
        )
        if isolate:
            return executor.execute_isolated(compiled)
        return executor.execute(compiled)

    def run(
        self,
        workload: str | Callable[..., Any],
        *args: Any,
        view=None,
        **params: Any,
    ) -> RunResult:
        """Execute a workload and return its :class:`RunResult`.

        ``workload`` is a registered name (see
        :func:`~repro.session.registry.available_workloads`) or a
        legacy-style callable ``fn(graph, ctx, setgraph, *args,
        **params)`` run against the undirected SetGraph.

        ``view`` routes a view-capable workload against a
        :class:`GraphSnapshot` (or the live :class:`DynamicSetGraph`)
        instead of the session's static structures.

        Registered static runs are a one-plan wrapper over the plan
        API: the workload is compiled and handed to a fusion-disabled
        :class:`~repro.session.plan.PlanExecutor`, whose sequential
        mode reproduces the eager instruction stream bit for bit — so
        the PR 3 surface (outputs, cycles, stats, caching) is
        unchanged.  View runs and ad-hoc callables bypass planning.
        """
        if view is not None:
            from repro.streaming.graph import ensure_live_view

            ensure_live_view(view)
        if callable(workload):
            if view is not None:
                raise ConfigError("view runs require a registered workload")
            name = getattr(workload, "__name__", repr(workload))
            warm = self._setgraph is not None
            mark = self.ctx.mark()
            output = workload(
                self.current_graph, self.ctx, self.setgraph, *args, **params
            )
        else:
            if args:
                raise ConfigError(
                    "registered workloads take keyword parameters only"
                )
            if view is None:
                from repro.session.plan import PlanExecutor, compile_plan

                plan = compile_plan(self, workload, params)
                (result,) = PlanExecutor(self, fuse=False).execute([plan])
                return result
            # View runs bypass planning but not the door: the same rule
            # engine that guards compile_plan validates the name,
            # signature and parameter domains here.
            spec = validate_request(self, workload, params)
            name = spec.name
            if not spec.view_capable:
                raise ConfigError(
                    f"workload {name!r} cannot run against a view"
                )
            warm = self._is_warm(spec, view, params)
            mark = self.ctx.mark()
            output = spec.fn(self, view=view, **params)
        result = RunResult(
            workload=name,
            output=output,
            report=self.ctx.report_since(mark),
            stats=self.ctx.stats_since(mark),
            registrations=self.ctx.registrations_since(mark),
            config=self.config,
            params=dict(params),
            warm=warm,
            session=self,
        )
        self.run_count += 1
        return result

    # ------------------------------------------------------------------

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return (
            f"SisaSession(n={self.graph.num_vertices}, "
            f"mode={self.config.mode!r}, threads={self.config.threads}, "
            f"runs={self.run_count}, epoch={self.epoch})"
        )


def run_workload(
    graph: CSRGraph,
    workload: str,
    *,
    config: ExecutionConfig | None = None,
    view=None,
    **params: Any,
) -> RunResult:
    """One-shot convenience: build a cold session and run one workload.

    Exists for scripts that genuinely run a single query; anything that
    issues repeated queries over the same graph should hold a
    :class:`SisaSession` instead.
    """
    return SisaSession(graph, config).run(workload, view=view, **params)
