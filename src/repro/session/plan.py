"""Compiled workload plans and the cross-plan fusing executor.

``session.run`` used to execute each workload eagerly and in
isolation; nothing in the API could see that a *batch* of queries was
about to run.  The plan/execute split introduces that visibility:

* :meth:`SisaSession.compile` returns a :class:`WorkloadPlan` — a
  declarative sequence of :class:`PlanStage` records naming the cached
  structures the workload reads (undirected SetGraph, orientation,
  degeneracy order) and, for the count-form workloads, exposing the
  per-task frontier bursts as schedulable :class:`BurstUnit` streams.
  A plan pins the session's stream version at compile time and fails
  fast (:class:`~repro.errors.SisaError`) if the stream drifted before
  execution.
* :class:`PlanExecutor` runs a batch of plans over one session.  With
  ``fuse=False`` it executes the plans strictly in order, issuing an
  instruction stream bit-identical to sequential ``session.run`` calls
  (outputs, simulated cycles, dispatch stats — asserted in tests and
  benchmarks).  With ``fuse=True`` it additionally

  - shares prep once per graph (the first plan needing a cached
    structure builds it; all others find it built),
  - dedups identical sub-requests through the session's epoch-keyed
    result cache *before any instruction issues* (a plan or plan stage
    whose ``(workload, params, version)`` key another plan in the
    batch owns simply waits and reuses the value), and
  - fuses compatible count-form frontier bursts from *different* plans
    into shared macro dispatches
    (:meth:`~repro.runtime.context.SisaContext.fused_count_burst`) —
    the first crossing of the ``begin_task`` boundary.

Fusion lane-placement rule (the explicit contract the ROADMAP's
"cross-task batching" item asked for): every constituent burst still
opens its own task at unit-creation time and its per-op model costs
land on that task's lane, exactly as unfused; what the macro elides is
the per-op SCU decode and the per-op probe-metadata fetch — the macro
decode is charged once, to the lane (and tenant) of the macro's first
constituent, and each constituent's probe lookup once, to its own
lane.  Burst fusion is an SCU capability: on the ``cpu-set`` host
baseline the executor falls back to the unfused batched stream
(prep sharing and dedup still apply).

Per-plan accounting under fusion uses the engine's per-tenant marks
(:meth:`~repro.hw.engine.ExecutionEngine.set_tenant`): every execution
slice is attributed to its owning plan, so each
:class:`~repro.session.result.RunResult` still reports its own cycles,
instruction stats and registrations even though the instruction
streams interleave.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Iterator

import numpy as np

from repro.errors import (
    ConfigError,
    HazardError,
    InjectedFault,
    ReproError,
    SisaError,
)
from repro.serving.validation import validate_request
from repro.session.cache import canonical_param, isolate_output
from repro.session.registry import WorkloadSpec
from repro.session.result import FailedResult, RunResult

BURST_KINDS = ("intersect", "union", "difference")


@dataclass
class BurstUnit:
    """One schedulable count-form frontier burst (one task's worth).

    Produced lazily by a burst stage's generator, which has already
    opened the unit's task (``lane``) and paid any charged pre-work
    (e.g. the neighborhood iterator).  The executor runs the burst —
    unfused via ``*_count_batch`` or as a fused-macro constituent — and
    hands the counts to ``sink``, which performs the remaining charged
    work of the task (e.g. cardinality fetches) and folds the counts
    into the stage state.
    """

    a: int
    bs: list
    kind: str  # one of BURST_KINDS
    lane: int
    sink: Callable[[np.ndarray], None]
    # Effect tokens the sink writes (``state:<slot>`` namespace; see
    # repro.analysis.static.effects).  The static verifier unions these
    # with the owning stage's declared writes; the dynamic checker uses
    # them to know which slots a deferred sink may legally touch.
    writes: tuple[str, ...] = ()


@dataclass
class PlanStage:
    """One declarative step of a compiled plan.

    ``kind="call"`` stages run ``run(session, state)`` as one opaque
    slice (prep builds, finalization math, non-decomposable kernels).
    ``kind="bursts"`` stages expose their work as a :class:`BurstUnit`
    generator; ``result(state)`` extracts the stage value once every
    unit's sink has run, and ``seed(state, value)`` installs a deduped
    value instead of executing (``key`` names the sub-request the stage
    computes — shared between plans, e.g. the triangle count inside
    ``clustering_coefficient``).

    Burst-generator contract: producing a unit may open its task and
    charge engine costs (``begin_task``, the neighborhood iterator) but
    must not dispatch SISA instructions or register sets — those belong
    in the burst itself and its ``sink``, whose execution the fused
    scheduler defers (generation may run ahead of earlier units'
    sinks, so it must not depend on their effects either).

    Effect declarations (``reads``/``writes``/``seeds``) use the token
    vocabulary of :mod:`repro.analysis.static.effects` — ``struct:``,
    ``state:``, ``sets:`` namespaces, with bare structure names like
    ``"oriented"`` accepted and expanded.  ``writes`` is what executing
    the stage mutates; ``seeds`` is the (``state:``) slots its ``seed``
    hook installs when the stage is deduped instead of executed — the
    verifier certifies the two can never diverge.
    """

    kind: str
    label: str
    reads: tuple[str, ...] = ()  # cached structures the stage touches
    key: tuple | None = None  # (workload, canonical params); version appended
    run: Callable[[Any, dict], Any] | None = None
    units: Callable[[Any, dict], Iterator[BurstUnit]] | None = None
    result: Callable[[dict], Any] | None = None
    seed: Callable[[dict, Any], None] | None = None
    writes: tuple[str, ...] = ()  # effect tokens executing the stage mutates
    seeds: tuple[str, ...] = ()  # state slots the seed hook installs


def subrequest_key(name: str, params: dict) -> tuple | None:
    """The version-less dedup key of a sub-request (``None`` when the
    parameters cannot be canonicalized safely)."""
    canon = canonical_param(params)
    if canon is None:
        return None
    return (name, canon)


class WorkloadPlan:
    """A compiled, executable description of one workload run.

    Compilation is declarative — no instructions issue, no structures
    build — and pins the session's stream version: executing a plan
    after the stream advanced raises :class:`SisaError` (recompile at
    the new version instead of silently mixing epochs).
    """

    def __init__(
        self,
        session,
        spec: WorkloadSpec,
        params: dict,
        stages: list[PlanStage],
        *,
        tenant: str | None = None,
    ):
        self.session = session
        self.spec = spec
        self.name = spec.name
        self.params = params
        # Cache/dedup keys use the spec-normalized parameters (e.g.
        # ``batch=None`` resolved against the session config), so every
        # spelling of the same request — eager run, plan, or another
        # plan's sub-request — shares one key.
        self.cache_params = (
            spec.normalize(session, params) if spec.normalize else params
        )
        self.stages = stages
        self.version = session._version
        self.requires = spec.requires_for(params)
        self.tenant = tenant
        self.fusable = any(stage.kind == "bursts" for stage in stages)

    @property
    def stale(self) -> bool:
        """True when the session's stream advanced past the pinned
        version."""
        return self.session._version != self.version

    def check_version(self) -> None:
        if self.stale:
            raise SisaError(
                f"plan for {self.name!r} was compiled at stream version "
                f"{self.version} but the session is at "
                f"{self.session._version}; recompile the plan"
            )

    def describe(self) -> list[str]:
        """The stage labels, in execution order (for logging/tests)."""
        return [stage.label for stage in self.stages]

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return (
            f"WorkloadPlan({self.name!r}, stages={self.describe()}, "
            f"version={self.version}, requires={self.requires!r})"
        )


def failure_reason(plan: WorkloadPlan, exc: BaseException) -> str:
    """The stable :class:`FailedResult` reason tag for one execution
    failure."""
    if isinstance(exc, InjectedFault):
        return "fault"
    if isinstance(exc, SisaError) and plan.stale:
        return "drift"
    return "error"


def compile_plan(
    session, workload: str, params: dict, *, tenant: str | None = None
) -> WorkloadPlan:
    """Compile one registered workload into a :class:`WorkloadPlan`."""
    if not isinstance(workload, str):
        raise ConfigError("plans compile registered workloads by name")
    if "view" in params:
        raise ConfigError(
            "view runs are not plannable; use session.run(..., view=...)"
        )
    obs = getattr(session, "obs", None)
    rec = obs.spans if obs is not None else None
    cspan = (
        rec.start(
            "compile",
            {"workload": str(workload), "tenant": tenant or "default"},
        )
        if rec is not None
        else None
    )
    try:
        return _compile(session, workload, params, tenant=tenant, rec=rec)
    finally:
        if rec is not None:
            rec.end(cspan)


def _compile(session, workload, params, *, tenant, rec):
    # A decomposed plan never calls spec.fn, so a misspelled parameter
    # the eager path would have rejected with TypeError must be caught
    # here — silently ignoring it would return a wrong result (e.g. a
    # typo'd ``measur=`` scoring the default measure).  The serving
    # rule engine is the single door: name, signature and domain rules
    # all run here (and on the eager paths) before any plan exists.
    vspan = rec.start("validate") if rec is not None else None
    spec = validate_request(session, workload, params)
    if rec is not None:
        rec.end(vspan)
    stages = spec.stages(session, dict(params)) if spec.stages else None
    if stages is None:
        # Opaque fallback: the whole kernel runs as one call stage —
        # not burst-fusable, but still schedulable and whole-plan
        # dedupable.
        def run(sess, state, *, _spec=spec, _params=params):
            return _spec.fn(sess, **_params)

        stages = [
            PlanStage(
                kind="call",
                label=f"run:{spec.name}",
                # The opaque kernel's effects come from the spec's
                # registration-time declaration: what structures it
                # reads plus any extra domains (e.g. sets:scratch for
                # kernels that register/release their own sets).
                reads=(spec.requires_for(params),) + tuple(spec.effect_reads),
                writes=tuple(spec.effect_writes),
                run=run,
            )
        ]
    return WorkloadPlan(session, spec, dict(params), stages, tenant=tenant)


class _PlanRun:
    """Execution-time state of one plan inside a fused batch."""

    def __init__(self, plan: WorkloadPlan, tag: object):
        self.plan = plan
        self.tag = tag
        self.state: dict = {}
        self.stage_idx = 0
        self.value: Any = None
        self.started = False
        self.finished = False
        self.warm = False
        self.cached = False
        self.output: Any = None
        self.cache_key: tuple | None = None
        self.owns_key = False
        self.gen: Iterator[BurstUnit] | None = None
        self.stats = None  # DispatchStats accumulator (set on start)
        self.registrations = 0
        # Observability (None when disabled): the plan's detached span,
        # the currently-open stage span, and the tenant-work reading at
        # the stage's start (for the stage span's cycle delta).
        self.span = None
        self.stage_span = None
        self.stage_w0 = 0.0


class PlanExecutor:
    """Executes a batch of compiled plans over one session.

    ``fuse=False`` is the reference mode: plans run strictly in batch
    order and each :class:`RunResult` is bit-identical to the one a
    sequential ``session.run`` call would have produced (``session.run``
    itself is a one-plan wrapper over this mode).  ``fuse=True`` enables
    shared prep, result-cache sub-request dedup and cross-plan burst
    fusion; ``fuse_width`` bounds how many buffered units one fused
    macro may carry.
    """

    def __init__(
        self,
        session,
        *,
        fuse: bool = True,
        fuse_width: int = 8,
        fault_injector=None,
        verify: bool = False,
        schedule=None,
        access_log=None,
    ):
        if fuse_width < 1:
            raise ConfigError("fuse_width must be positive")
        if access_log is not None and schedule is None:
            raise ConfigError(
                "an access_log needs a schedule to attribute accesses to"
            )
        self.session = session
        self.fuse = fuse
        self.fuse_width = fuse_width
        # verify=True runs the static hazard verifier over every batch
        # before execution and raises HazardError on certification
        # failure; the report is kept on ``last_analysis`` either way.
        self.verify = verify
        self.last_analysis = None
        # A CertifiedSchedule (repro.analysis.static.schedule): execute
        # the batch in the schedule's explicit topological node order —
        # the replay mode the certifier's bit-identity guarantee is
        # proven against.  Overrides fuse (node isolation is the point;
        # whole-plan and stage-key dedup still apply, driven by the
        # schedule's dedup edges).  With an AccessLog
        # (repro.analysis.static.racecheck) every node's execution is
        # bracketed so shared-structure hooks attribute to it.
        self.schedule = schedule
        self.access_log = access_log
        # A serving FaultInjector (soak testing): its on_stage hook may
        # raise InjectedFault at any stage boundary.
        self.fault_injector = fault_injector
        # Burst fusion needs the SCU; the host baseline executes the
        # unfused batched stream (dedup/prep sharing still apply).
        self._fuse_bursts = fuse and session.ctx.mode == "sisa"
        self._done: dict[tuple, Any] = {}
        self._owners: dict[tuple, _PlanRun] = {}

    def _inject(self, plan: WorkloadPlan, stage_label: str) -> None:
        """Give the fault injector a shot at this stage boundary.

        Whatever the injector raises *is* an injected fault: foreign
        exception types (soak scripts simulating, say, a kernel
        ``RuntimeError``) are wrapped into
        :class:`~repro.errors.InjectedFault` here so the retry and
        isolation machinery — which deliberately handles only the
        package's own failure taxonomy — treats them as the transients
        they simulate, while a genuine bug in executing code still
        propagates."""
        if self.fault_injector is None:
            return
        try:
            self.fault_injector.on_stage(plan, stage_label)
        except ReproError:
            raise
        except Exception as exc:  # repolint: disable=overbroad-except -- injector raises are faults by definition
            raise InjectedFault(
                f"fault injector raised {type(exc).__name__} at stage "
                f"{stage_label!r}",
                details={"workload": plan.name, "stage": stage_label},
            ) from exc

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------

    def execute(self, plans: list[WorkloadPlan]) -> list[RunResult]:
        session = self.session
        for plan in plans:
            if plan.session is not session:
                raise ConfigError(
                    "plan belongs to a different session; route cross-graph "
                    "batches through a SessionPool"
                )
            plan.check_version()
        if self.verify:
            # Deferred import: the analysis package is optional at
            # execution time and imports nothing from the hot path.
            from repro.analysis.static.verifier import analyze_batch

            report = analyze_batch(plans, fuse_width=self.fuse_width)
            self.last_analysis = report
            if not report.certified:
                raise HazardError(
                    f"plan batch failed static verification: "
                    f"{report.summary()}",
                    details=report.as_dict(),
                )
        if self.schedule is not None:
            if not self.schedule.matches(plans):
                raise ConfigError(
                    "the certified schedule was built for a different plan "
                    "batch (workloads or stage lists differ); re-certify"
                )
            return self._execute_scheduled(plans)
        if not self.fuse:
            return [self._execute_sequential(plan) for plan in plans]
        return self._execute_fused(plans)

    def execute_isolated(
        self, plans: list[WorkloadPlan]
    ) -> list[RunResult | FailedResult]:
        """Execute each plan in its own blast radius: a plan that
        raises yields a structured :class:`FailedResult` in its slot
        instead of aborting the batch.  No retries here — bounded retry
        with cycle accounting is the :class:`SessionPool`'s job; this
        is the session-level primitive underneath it.  Isolation costs
        fusion *across* plans (each plan runs through its own
        sub-executor), but in-plan dedup against the shared result
        cache still applies."""
        results: list[RunResult | FailedResult] = []
        for plan in plans:
            sub = PlanExecutor(
                self.session,
                fuse=self.fuse,
                fuse_width=self.fuse_width,
                fault_injector=self.fault_injector,
                verify=self.verify,
            )
            try:
                results.append(sub.execute([plan])[0])
            except ReproError as exc:
                # Only the package's own failure taxonomy converts to a
                # structured FailedResult (injected faults, drift,
                # validation); anything else is a bug and propagates.
                results.append(
                    FailedResult(
                        workload=plan.name,
                        params=dict(plan.params),
                        tenant=plan.tenant,
                        reason=failure_reason(plan, exc),
                        error=exc,
                        attempts=1,
                    )
                )
        return results

    # ------------------------------------------------------------------
    # Sequential (reference) mode
    # ------------------------------------------------------------------

    def _execute_sequential(self, plan: WorkloadPlan) -> RunResult:
        """Run one plan exactly as the eager ``session.run`` did:
        result-cache consult, warm probe, one engine mark bracketing
        the stage stream (which reproduces the eager instruction stream
        op for op).  Observability hooks (``obs``/``rec``) are nullable
        and observation-only: they read the engine, never charge it."""
        session = self.session
        ctx = session.ctx
        obs = getattr(session, "obs", None)
        rec = obs.spans if obs is not None else None
        tenant = plan.tenant or "default"
        if obs is not None:
            obs.set_context(tenant, plan.name)
        pspan = (
            rec.start(
                f"plan:{plan.name}",
                {"tenant": tenant, "version": str(plan.version)},
            )
            if rec is not None
            else None
        )
        try:
            cache_key = None
            if session.config.result_cache:
                lspan = rec.start("cache:lookup") if rec is not None else None
                cache_key = session._results.make_key(
                    plan.name, plan.cache_params, plan.version
                )
                hit = (
                    session._results.get(cache_key)
                    if cache_key is not None
                    else None
                )
                if rec is not None:
                    rec.end(lspan)
                if hit is not None:
                    mark = ctx.mark()
                    session.run_count += 1
                    result = RunResult(
                        workload=plan.name,
                        output=hit[0],
                        report=ctx.report_since(mark),
                        stats=ctx.stats_since(mark),
                        registrations=0,
                        config=session.config,
                        params=dict(plan.params),
                        warm=True,
                        session=session,
                        cached=True,
                    )
                    if rec is not None:
                        rec.end(pspan, cycles=0.0)
                        result.spans = pspan
                        obs.plan_wall(tenant, plan.name, pspan.wall_seconds)
                        obs.plan_done("cached")
                    return result
            warm = session._is_warm(plan.spec, None, plan.params)
            mark = ctx.mark()
            state: dict = {}
            value: Any = None
            for stage in plan.stages:
                self._inject(plan, stage.label)
                if rec is not None:
                    sspan = rec.start(f"stage:{stage.label}")
                    w0 = ctx.engine.work_cycles()
                if stage.kind == "call":
                    value = stage.run(session, state)
                else:
                    for unit in stage.units(session, state):
                        counts = getattr(ctx, f"{unit.kind}_count_batch")(
                            unit.a, unit.bs
                        )
                        unit.sink(counts)
                    value = stage.result(state)
                if rec is not None:
                    rec.end(sspan, cycles=ctx.engine.work_cycles() - w0)
            report = ctx.report_since(mark)
            result = RunResult(
                workload=plan.name,
                output=value,
                report=report,
                stats=ctx.stats_since(mark),
                registrations=ctx.registrations_since(mark),
                config=session.config,
                params=dict(plan.params),
                warm=warm,
                session=session,
            )
            if cache_key is not None:
                session._results.put(cache_key, value)
            session.run_count += 1
            if rec is not None:
                rec.end(pspan, cycles=report.work_cycles)
                result.spans = pspan
                obs.plan_wall(tenant, plan.name, pspan.wall_seconds)
                obs.plan_done("ok")
            return result
        except BaseException:
            # End the plan span (popping any abandoned inner spans) so
            # a faulted plan cannot wedge the recorder's stack.
            if rec is not None and pspan.t1 is None:
                rec.end(pspan)
            raise

    # ------------------------------------------------------------------
    # Fused mode
    # ------------------------------------------------------------------

    @contextmanager
    def _slice(self, run: _PlanRun):
        """Attribute one execution slice (charges, stats, set
        registrations) to ``run``'s plan.

        With observability on, the slice also switches the hub's
        tenant/workload context and re-enters the run's open span, so
        kernel-level feeds issued during the slice label and nest under
        the owning plan even when slices of different plans interleave
        (``_flush`` executing deferred units of another run)."""
        ctx = self.session.ctx
        obs = getattr(self.session, "obs", None)
        span = None
        if obs is not None:
            obs.set_context(run.plan.tenant or "default", run.plan.name)
            span = run.stage_span or run.span
            if span is not None:
                obs.spans.enter(span)
        ctx.engine.set_tenant(run.tag)
        stats_mark = ctx.scu.stats.snapshot()
        reg_mark = ctx.sm.registrations
        try:
            yield
        finally:
            ctx.engine.set_tenant(None)
            run.stats.add(ctx.scu.stats.since(stats_mark))
            run.registrations += ctx.sm.registrations - reg_mark
            if span is not None:
                obs.spans.exit(span)

    @contextmanager
    def _attribute(self, run: _PlanRun):
        """Cycle-only attribution for slices that cannot dispatch SISA
        instructions — the per-unit generator pulls (``begin_task`` +
        neighborhood iterator charge the engine but record no stats and
        register no sets), where a full stats snapshot per vertex would
        dominate the fused path's Python time."""
        engine = self.session.ctx.engine
        engine.set_tenant(run.tag)
        try:
            yield
        finally:
            engine.set_tenant(None)

    def _execute_fused(self, plans: list[WorkloadPlan]) -> list[RunResult]:
        from repro.isa.scu import DispatchStats

        session = self.session
        obs = getattr(session, "obs", None)
        rec = obs.spans if obs is not None else None
        # Interleaved plans get detached spans under whatever span is
        # current at batch entry (a pool's session span, usually); the
        # recorder re-enters them slice by slice via _slice.
        self._span_parent = rec.current if rec is not None else None
        runs = []
        for i, plan in enumerate(plans):
            tag = ("plan", i, plan.name)
            run = _PlanRun(plan, tag)
            run.stats = DispatchStats()
            runs.append(run)
        buffer: list[tuple[BurstUnit, _PlanRun]] = []
        engine = session.ctx.engine
        try:
            pending = list(runs)
            while pending:
                progressed = False
                still = []
                for run in pending:
                    progressed |= self._advance(run, buffer)
                    if not run.finished:
                        still.append(run)
                pending = still
                if pending and not progressed:
                    # Every remaining run waits on a key whose owner sits
                    # in the buffer: drain it so owners can publish.
                    if buffer:
                        self._flush(buffer)
                    else:  # pragma: no cover - ownership chains are acyclic
                        raise SisaError("plan batch deadlocked on dedup keys")
            self._flush(buffer)
        except BaseException:
            # A failed batch must not leak per-plan shadow lanes into
            # the long-lived engine (pool callers retry batches).
            for run in runs:
                engine.drop_tenant(run.tag)
            raise
        results = []
        for run in runs:
            report = engine.tenant_report(run.tag)
            engine.drop_tenant(run.tag)
            result = RunResult(
                workload=run.plan.name,
                output=run.output,
                report=report,
                stats=run.stats,
                registrations=run.registrations,
                config=session.config,
                params=dict(run.plan.params),
                warm=run.warm,
                session=session,
                cached=run.cached,
                fused=True,
            )
            if rec is not None and run.span is not None:
                if run.span.t1 is None:
                    # The plan span's cycles are the engine's attributed
                    # tenant work — the exact quantity the pool charges
                    # to this plan's tenant ledger.
                    rec.end(run.span, cycles=report.work_cycles)
                result.spans = run.span
                obs.plan_wall(
                    run.plan.tenant or "default",
                    run.plan.name,
                    run.span.wall_seconds,
                )
                obs.plan_done("cached" if run.cached else "ok")
            results.append(result)
            session.run_count += 1
        return results

    # ------------------------------------------------------------------
    # Scheduled (certified-replay) mode
    # ------------------------------------------------------------------

    def _execute_scheduled(self, plans: list[WorkloadPlan]) -> list[RunResult]:
        """Execute the batch in the certified schedule's explicit node
        order.

        Each ``(plan, stage)`` node runs as one attributed slice, in
        exactly the order ``schedule.order`` dictates — the dependency
        DAG's dedup edges guarantee every cache-key owner publishes
        before a follower starts, so any topological order is
        output-identical (the certifier's core claim, property-tested).
        Bursts execute unfused (node isolation is the point of a
        replay); whole-plan and stage-key dedup still apply.  Each
        node's attributed tenant-work delta is recorded back into the
        schedule (:meth:`CertifiedSchedule.record_cost`), feeding the
        measured what-if model; with an access log, execution is
        bracketed per node so shared-structure hooks attribute to it.
        """
        from repro.isa.scu import DispatchStats

        schedule = self.schedule
        log = self.access_log
        session = self.session
        engine = session.ctx.engine
        obs = getattr(session, "obs", None)
        rec = obs.spans if obs is not None else None
        self._span_parent = rec.current if rec is not None else None
        runs = []
        for i, plan in enumerate(plans):
            run = _PlanRun(plan, ("plan", i, plan.name))
            run.stats = DispatchStats()
            runs.append(run)
        try:
            for node_id in schedule.order:
                node = schedule.nodes[node_id]
                run = runs[node.plan_index]
                stage = run.plan.stages[node.stage_index]
                self._before_node(node_id)
                w0 = engine.tenant_work_cycles(run.tag)
                if log is not None:
                    log.refresh(session)
                    log.declared(node_id, stage)
                    with log.at(node_id, stage.label):
                        self._run_node(run, stage)
                else:
                    self._run_node(run, stage)
                cycles = engine.tenant_work_cycles(run.tag) - w0
                schedule.record_cost(node_id, cycles)
                self._after_node(node_id, cycles)
        except BaseException:
            for run in runs:
                engine.drop_tenant(run.tag)
            raise
        results = []
        for run in runs:
            report = engine.tenant_report(run.tag)
            engine.drop_tenant(run.tag)
            result = RunResult(
                workload=run.plan.name,
                output=run.output,
                report=report,
                stats=run.stats,
                registrations=run.registrations,
                config=session.config,
                params=dict(run.plan.params),
                warm=run.warm,
                session=session,
                cached=run.cached,
                scheduled=True,
            )
            if rec is not None and run.span is not None:
                if run.span.t1 is None:
                    rec.end(run.span, cycles=report.work_cycles)
                result.spans = run.span
                obs.plan_wall(
                    run.plan.tenant or "default",
                    run.plan.name,
                    run.span.wall_seconds,
                )
                obs.plan_done("cached" if run.cached else "ok")
            results.append(result)
            session.run_count += 1
        return results

    def _run_node(self, run: _PlanRun, stage: PlanStage) -> None:
        """Execute one schedule node (one stage of one plan)."""
        if not run.started:
            if not self._start(run):  # pragma: no cover - dedup edges
                raise SisaError(
                    "certified schedule ordered a follower before its "
                    "dedup owner published; the dependency DAG is wrong"
                )
        if run.finished:
            # Whole-plan cache hit at _start: every node of this plan
            # is a zero-cost skip.
            return
        obs = getattr(self.session, "obs", None)
        self._inject(run.plan, stage.label)
        if obs is not None:
            run.stage_span = obs.spans.start_detached(
                f"stage:{stage.label}", run.span
            )
            run.stage_w0 = self.session.ctx.engine.tenant_work_cycles(run.tag)
        try:
            if stage.kind == "call":
                with self._slice(run):
                    run.value = stage.run(self.session, run.state)
            else:
                self._run_burst_node(run, stage)
        finally:
            if obs is not None and run.stage_span is not None:
                obs.spans.end(
                    run.stage_span,
                    cycles=self.session.ctx.engine.tenant_work_cycles(run.tag)
                    - run.stage_w0,
                )
                run.stage_span = None
        run.stage_idx += 1
        if run.stage_idx >= len(run.plan.stages):
            self._finish(run)

    def _run_burst_node(self, run: _PlanRun, stage: PlanStage) -> None:
        """One burst stage, unfused, with stage-key dedup: a follower
        whose key the owner already published seeds instead of
        executing (the schedule's dedup edges order the owner first)."""
        session = self.session
        key = self._stage_key(stage, run.plan)
        if key is not None:
            found, value = self._lookup(key)
            if found:
                stage.seed(run.state, value)
                run.value = stage.result(run.state)
                obs = getattr(session, "obs", None)
                if obs is not None:
                    obs.dedup(run.plan.name)
                return
            self._owners[key] = run
        with self._attribute(run):
            gen = stage.units(session, run.state)
        while True:
            with self._attribute(run):
                unit = next(gen, None)
            if unit is None:
                break
            with self._slice(run):
                unit.sink(self._counts(unit))
        run.value = stage.result(run.state)
        if key is not None:
            self._publish(key, run.value)

    # -- scheduled-mode extension points -------------------------------

    def _counts(self, unit: BurstUnit) -> np.ndarray:
        """Execute one scheduled burst unit's count batch.

        The single seam the shard-parallel executor
        (:class:`repro.parallel.executor.ParallelExecutor`) overrides:
        it computes the intersection cardinalities on worker processes
        and feeds them back through the same ``*_count_batch`` dispatch,
        so modeled cycles and outputs stay bit-identical to this
        reference implementation.
        """
        return getattr(self.session.ctx, f"{unit.kind}_count_batch")(
            unit.a, unit.bs
        )

    def _before_node(self, node_id: int) -> None:
        """Hook before one schedule node executes (no-op here; the
        parallel executor's lane gate admits the node)."""

    def _after_node(self, node_id: int, cycles: float) -> None:
        """Hook after one schedule node's cost is recorded (no-op here;
        the parallel executor's lane gate marks it complete)."""

    # -- key lookup ----------------------------------------------------

    def _lookup(self, key: tuple):
        """Resolve a dedup key against the batch map and the session's
        result cache.  Returns ``(found, value)``."""
        if key in self._done:
            return True, isolate_output(self._done[key])
        session = self.session
        if session.config.result_cache:
            hit = session._results.get(key)
            if hit is not None:
                return True, hit[0]
        return False, None

    def _publish(self, key: tuple, value: Any) -> None:
        self._done[key] = isolate_output(value)
        self._owners.pop(key, None)
        if self.session.config.result_cache:
            self.session._results.put(key, value)

    def _stage_key(self, stage: PlanStage, plan: WorkloadPlan) -> tuple | None:
        if stage.key is None:
            return None
        return (*stage.key, plan.version)

    # -- one scheduling step -------------------------------------------

    def _advance(self, run: _PlanRun, buffer) -> bool:
        """Advance one run by one step; returns False when blocked on a
        key another run owns."""
        plan = run.plan
        if not run.started:
            return self._start(run)
        if run.stage_idx >= len(plan.stages):
            self._finish(run)
            return True
        stage = plan.stages[run.stage_idx]
        if stage.kind == "call":
            # Call stages may register/release sets; drain deferred
            # bursts first so no unit observes mutated SM state.
            self._flush(buffer)
            self._inject(plan, stage.label)
            obs = getattr(self.session, "obs", None)
            if obs is not None:
                run.stage_span = obs.spans.start_detached(
                    f"stage:{stage.label}", run.span
                )
                run.stage_w0 = self.session.ctx.engine.tenant_work_cycles(
                    run.tag
                )
            with self._slice(run):
                run.value = stage.run(self.session, run.state)
            if obs is not None:
                obs.spans.end(
                    run.stage_span,
                    cycles=self.session.ctx.engine.tenant_work_cycles(run.tag)
                    - run.stage_w0,
                )
                run.stage_span = None
            run.stage_idx += 1
            return True
        return self._advance_bursts(run, stage, buffer)

    def _start(self, run: _PlanRun) -> bool:
        session = self.session
        plan = run.plan
        obs = getattr(session, "obs", None)
        if obs is not None and run.span is None:
            run.span = obs.spans.start_detached(
                f"plan:{plan.name}",
                self._span_parent,
                {
                    "tenant": plan.tenant or "default",
                    "version": str(plan.version),
                },
            )
        key = session._results.make_key(
            plan.name, plan.cache_params, plan.version
        )
        run.cache_key = key
        if key is not None:
            found, value = self._lookup(key)
            if found:
                run.output = value
                run.cached = True
                run.warm = True
                run.started = True
                run.finished = True
                if obs is not None:
                    obs.spans.end(run.span, cycles=0.0)
                return True
            owner = self._owners.get(key)
            if owner is not None and owner is not run:
                return False  # an identical plan is already executing
            self._owners[key] = run
            run.owns_key = True
        run.warm = session._is_warm(plan.spec, None, plan.params)
        run.started = True
        return True

    def _advance_bursts(self, run: _PlanRun, stage: PlanStage, buffer) -> bool:
        obs = getattr(self.session, "obs", None)
        key = self._stage_key(stage, run.plan)
        if run.gen is None:
            if key is not None:
                found, value = self._lookup(key)
                if found:
                    # Sub-request dedup: install the shared value with
                    # zero instructions issued.
                    stage.seed(run.state, value)
                    run.value = stage.result(run.state)
                    run.stage_idx += 1
                    if obs is not None:
                        obs.dedup(run.plan.name)
                    return True
                owner = self._owners.get(key)
                if owner is not None and owner is not run:
                    return False
                self._owners[key] = run
            self._inject(run.plan, stage.label)
            if obs is not None:
                run.stage_span = obs.spans.start_detached(
                    f"stage:{stage.label}", run.span
                )
                run.stage_w0 = self.session.ctx.engine.tenant_work_cycles(
                    run.tag
                )
            with self._attribute(run):
                run.gen = stage.units(self.session, run.state)
        with self._attribute(run):
            unit = next(run.gen, None)
        if unit is None:
            # Generator exhausted: drain deferred units so the stage
            # value is complete, then publish it.
            self._flush(buffer)
            run.gen = None
            run.value = stage.result(run.state)
            if key is not None:
                self._publish(key, run.value)
            run.stage_idx += 1
            if obs is not None and run.stage_span is not None:
                obs.spans.end(
                    run.stage_span,
                    cycles=self.session.ctx.engine.tenant_work_cycles(run.tag)
                    - run.stage_w0,
                )
                run.stage_span = None
            return True
        if self._fuse_bursts:
            buffer.append((unit, run))
            if len(buffer) >= self.fuse_width:
                self._flush(buffer)
        else:
            # Host baseline / fusion off: execute in place, unfused.
            # The unit's task is still current (nothing ran since its
            # begin_task), so charges land on its lane naturally.
            with self._slice(run):
                counts = getattr(self.session.ctx, f"{unit.kind}_count_batch")(
                    unit.a, unit.bs
                )
                unit.sink(counts)
        return True

    def _finish(self, run: _PlanRun) -> None:
        run.output = run.value
        if run.cache_key is not None:
            self._publish(run.cache_key, run.output)
        run.finished = True

    def _flush(self, buffer) -> None:
        """Issue every buffered unit as fused macros (one macro per
        maximal same-kind group; the first constituent carries the
        macro decode)."""
        if not buffer:
            return
        ctx = self.session.ctx
        i = 0
        n = len(buffer)
        while i < n:
            kind = buffer[i][0].kind
            j = i
            first = True
            while j < n and buffer[j][0].kind == kind:
                unit, run = buffer[j]
                with self._slice(run), ctx.on_lane(unit.lane):
                    counts = ctx.fused_count_burst(
                        unit.a, unit.bs, kind=kind, include_decode=first
                    )
                    unit.sink(counts)
                first = False
                j += 1
            i = j
        buffer.clear()
