"""RunResult: the uniform result record of every session run.

Supersedes the per-call ``AlgorithmRun`` (kept only for the deprecated
one-shot shims): on top of the functional output and the engine report
it carries *per-run* instruction stats, the set-registration count and
a configuration echo, all delimited by the engine epoch marks the
session takes around each run — so a warm session still reports each
run's own cost, not the context's lifetime accumulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.hw.engine import EngineReport
from repro.isa.opcodes import Opcode
from repro.isa.scu import DispatchStats
from repro.session.config import ExecutionConfig

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.session.session import SisaSession


@dataclass
class RunResult:
    """Functional output plus the per-run accounting of one workload run."""

    workload: str
    output: Any
    report: EngineReport  # this run's engine delta
    stats: DispatchStats  # this run's SCU counter deltas
    registrations: int  # sets registered during this run
    config: ExecutionConfig  # configuration echo
    params: dict[str, Any]  # workload parameters echo
    warm: bool  # True when cached structures were reused
    session: "SisaSession"
    cached: bool = False  # True when served from the result cache
    # True when this run executed inside a fused plan batch: ``report``
    # then carries the plan's per-tenant attributed engine delta (its
    # own slice of the interleaved stream) rather than a contiguous
    # mark-to-mark region.
    fused: bool = False
    # True when this run executed under a CertifiedSchedule's explicit
    # topological order (repro.analysis.static.schedule); accounting is
    # per-tenant-attributed exactly as in fused mode.
    scheduled: bool = False
    # True when the scheduled replay additionally fanned its count
    # bursts out to shard worker processes (repro.parallel); outputs,
    # ledgers and modeled cycles are certified bit-identical to the
    # sequential scheduled run, so this flag is provenance, not a
    # semantic fork.
    parallel: bool = False
    # With observability enabled, the root Span of this run's span tree
    # (``plan:{name}`` → stages → kernels); dump it with
    # :func:`repro.observability.write_chrome_trace`.  None otherwise.
    spans: Any = None

    @property
    def runtime_cycles(self) -> float:
        return self.report.runtime_cycles

    @property
    def runtime_mcycles(self) -> float:
        """Millions of cycles — the unit of the paper's Fig. 6 y-axis."""
        return self.report.runtime_cycles / 1e6

    @property
    def instructions(self) -> int:
        """SISA instructions dispatched by this run."""
        return self.stats.instructions

    def opcode_counts(self) -> dict[Opcode, int]:
        """Per-opcode instruction counts of this run."""
        return dict(self.stats.by_opcode)

    @property
    def context(self):
        """The owning session's context (whole-session state)."""
        return self.session.ctx

    @property
    def ok(self) -> bool:
        """True — this run completed.  Mirror of
        :attr:`FailedResult.ok` so pool batches can be filtered
        uniformly."""
        return True


@dataclass
class FailedResult:
    """The structured record of a plan the hardened pool gave up on.

    Under fault isolation a failed plan no longer aborts its batch;
    its slot in the ``pool.run()`` result list holds one of these
    instead.  ``reason`` is a stable machine-readable tag:

    * ``"fault"`` — an injected kernel fault survived every retry;
    * ``"drift"`` — the plan's pinned stream version went stale and the
      retry policy forbade (or exhausted) recompiles;
    * ``"budget-exhausted"`` — the owning tenant's cycle budget ran out
      before the plan started;
    * ``"worker-crash"`` — a shard worker process died mid-batch under
      parallel execution (:class:`~repro.errors.WorkerCrashError`); the
      session's unfinished plans get this slot instead of hanging on
      the dead pipe;
    * ``"error"`` — any other execution-time exception.

    ``retry_cycles`` is the modeled work spent on this plan's failed
    attempts — already charged to the owning tenant's retry ledger.
    """

    workload: str
    params: dict[str, Any]
    tenant: str
    reason: str
    error: BaseException | None = None
    attempts: int = 0  # execution attempts made (0 = never started)
    retry_cycles: float = 0.0
    details: dict[str, Any] | None = None

    @property
    def ok(self) -> bool:
        return False

    @property
    def message(self) -> str:
        return str(self.error) if self.error is not None else self.reason

    def __repr__(self) -> str:  # keep batch dumps readable
        return (
            f"FailedResult(workload={self.workload!r}, "
            f"tenant={self.tenant!r}, reason={self.reason!r}, "
            f"attempts={self.attempts})"
        )
