"""RunResult: the uniform result record of every session run.

Supersedes the per-call ``AlgorithmRun`` (kept only for the deprecated
one-shot shims): on top of the functional output and the engine report
it carries *per-run* instruction stats, the set-registration count and
a configuration echo, all delimited by the engine epoch marks the
session takes around each run — so a warm session still reports each
run's own cost, not the context's lifetime accumulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.hw.engine import EngineReport
from repro.isa.opcodes import Opcode
from repro.isa.scu import DispatchStats
from repro.session.config import ExecutionConfig

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.session.session import SisaSession


@dataclass
class RunResult:
    """Functional output plus the per-run accounting of one workload run."""

    workload: str
    output: Any
    report: EngineReport  # this run's engine delta
    stats: DispatchStats  # this run's SCU counter deltas
    registrations: int  # sets registered during this run
    config: ExecutionConfig  # configuration echo
    params: dict[str, Any]  # workload parameters echo
    warm: bool  # True when cached structures were reused
    session: "SisaSession"
    cached: bool = False  # True when served from the result cache
    # True when this run executed inside a fused plan batch: ``report``
    # then carries the plan's per-tenant attributed engine delta (its
    # own slice of the interleaved stream) rather than a contiguous
    # mark-to-mark region.
    fused: bool = False

    @property
    def runtime_cycles(self) -> float:
        return self.report.runtime_cycles

    @property
    def runtime_mcycles(self) -> float:
        """Millions of cycles — the unit of the paper's Fig. 6 y-axis."""
        return self.report.runtime_cycles / 1e6

    @property
    def instructions(self) -> int:
        """SISA instructions dispatched by this run."""
        return self.stats.instructions

    def opcode_counts(self) -> dict[Opcode, int]:
        """Per-opcode instruction counts of this run."""
        return dict(self.stats.by_opcode)

    @property
    def context(self):
        """The owning session's context (whole-session state)."""
        return self.session.ctx
