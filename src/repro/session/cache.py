"""Epoch-keyed result caching for session workloads.

Every registered workload is a deterministic function of (workload
name, parameters, graph state), and a session knows exactly when its
graph state changes: the attached stream's ``(epoch, mutations)``
version.  So repeated identical runs on an unchanged graph can be
answered from a cache in O(1) — no instructions dispatched, no sets
registered — while any mutation (or explicit invalidation) naturally
misses, because the version is part of the key.

Parameters are canonicalized structurally (NumPy arrays by value,
graphs by their CSR arrays); a parameter the cache cannot canonicalize
makes that run uncacheable — counted in :class:`CacheStats.skips` —
rather than risking a false hit.
"""

from __future__ import annotations

import dataclasses
import hashlib
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.parallel.ownership import assert_host_owned


@dataclass
class CacheStats:
    """Hit/miss accounting of one session's result cache."""

    hits: int = 0
    misses: int = 0
    skips: int = 0  # uncacheable runs (views, callables, odd params)
    invalidations: int = 0  # entries dropped by explicit invalidation
    evictions: int = 0  # entries dropped by the LRU size bound
    corruptions: int = 0  # entries failing fingerprint verification


def isolate_output(value: Any):
    """A defensive copy of a cached output's mutable array state.

    Cached outputs are stored and served across runs; without this, a
    caller mutating a returned array in place would poison every later
    cache hit (and the first caller's result would alias the cache
    entry).  Arrays are copied recursively through the common
    containers; other objects pass through by reference.
    """
    if isinstance(value, np.ndarray):
        return value.copy()
    if isinstance(value, list):
        return [isolate_output(v) for v in value]
    if isinstance(value, tuple):
        if hasattr(value, "_fields"):  # NamedTuple: preserve the type
            return type(value)(*(isolate_output(v) for v in value))
        return tuple(isolate_output(v) for v in value)
    if isinstance(value, dict):
        return {k: isolate_output(v) for k, v in value.items()}
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return dataclasses.replace(
            value,
            **{
                f.name: isolate_output(getattr(value, f.name))
                for f in dataclasses.fields(value)
                if f.init
            },
        )
    return value


def canonical_param(value: Any):
    """A hashable, by-value canonical form of one workload parameter.

    Returns ``None`` when the value cannot be canonicalized safely —
    the caller must then skip caching (``None`` is itself encoded, so
    a literal ``None`` parameter stays cacheable).
    """
    if value is None:
        return ("none",)
    if isinstance(value, (bool, int, float, str, bytes)):
        return (type(value).__name__, value)
    if isinstance(value, np.generic):
        return ("npscalar", value.item())
    if isinstance(value, np.ndarray):
        return ("ndarray", value.shape, value.dtype.str, value.tobytes())
    if isinstance(value, (list, tuple)):
        parts = tuple(canonical_param(v) for v in value)
        if any(p is None for p in parts):
            return None
        return ("seq", parts)
    if isinstance(value, (set, frozenset)):
        parts = tuple(sorted(map(canonical_param, value), key=repr))
        if any(p is None for p in parts):
            return None
        return ("set", parts)
    if isinstance(value, dict):
        items = []
        for k in sorted(value, key=repr):
            part = canonical_param(value[k])
            if part is None:
                return None
            items.append((repr(k), part))
        return ("dict", tuple(items))
    offsets = getattr(value, "offsets", None)
    targets = getattr(value, "targets", None)
    if isinstance(offsets, np.ndarray) and isinstance(targets, np.ndarray):
        # CSRGraph / DiGraph pattern arguments, keyed by structure.
        return ("csr", offsets.tobytes(), targets.tobytes())
    return None


def fingerprint(value: Any) -> str:
    """A stable content digest of a cached output.

    Computed at ``put`` time and re-verified on every ``get``: an entry
    whose bytes changed underneath us — bitrot in a real system,
    :meth:`ResultCache.corrupt_one` in a soak — fails the check and is
    treated as a miss, so a poisoned entry is recomputed rather than
    served.  Unlike :func:`canonical_param` this never gives up: values
    it cannot encode structurally are folded in by ``repr``, which is
    sufficient for tamper *detection* (the digest only has to be
    deterministic for equal state, not collision-proof across types).
    """
    digest = hashlib.sha1()
    _feed(digest, value)
    return digest.hexdigest()


def _feed(digest, value: Any) -> None:
    if isinstance(value, np.ndarray):
        digest.update(b"nd")
        digest.update(repr(value.shape).encode())
        digest.update(value.dtype.str.encode())
        digest.update(np.ascontiguousarray(value).tobytes())
    elif isinstance(value, dict):
        digest.update(b"map")
        for k in sorted(value, key=repr):
            digest.update(repr(k).encode())
            _feed(digest, value[k])
    elif isinstance(value, (list, tuple)):
        digest.update(f"seq{type(value).__name__}".encode())
        for v in value:
            _feed(digest, v)
    elif isinstance(value, (set, frozenset)):
        digest.update(b"set")
        for part in sorted((fingerprint(v) for v in value)):
            digest.update(part.encode())
    elif dataclasses.is_dataclass(value) and not isinstance(value, type):
        digest.update(type(value).__name__.encode())
        for f in dataclasses.fields(value):
            _feed(digest, getattr(value, f.name))
    else:
        digest.update(repr(value).encode())


def _tamper(value: Any) -> Any:
    """A damaged copy of a cached output (fault injection only): the
    first non-empty array gets one element flipped; array-free outputs
    are wrapped so their repr changes."""
    if isinstance(value, np.ndarray):
        if value.size and value.dtype.kind in "iufb":
            out = value.copy()
            flat = out.reshape(-1)
            flat[0] = 0 if flat[0] else 1
            return out
        return value
    if isinstance(value, list):
        return [_tamper(v) for v in value]
    if isinstance(value, tuple) and not hasattr(value, "_fields"):
        return tuple(_tamper(v) for v in value)
    if isinstance(value, dict):
        return {k: _tamper(v) for k, v in value.items()}
    return ("corrupted", value)


class ResultCache:
    """A bounded LRU cache of workload outputs keyed on
    ``(workload, canonical params, stream version)``."""

    def __init__(self, maxsize: int = 128):
        self.maxsize = int(maxsize)
        self._entries: OrderedDict[tuple, Any] = OrderedDict()
        self.stats = CacheStats()
        # Optional observability hub; mirrors stats events into labeled
        # counters (by workload = key[0]).  Observation-only.
        self.obs = None
        # Optional access-event hook ``(op, key) -> None`` with op in
        # {"read", "write-idempotent", "write"}: the race detector's
        # shim (repro.analysis.static.racecheck).  Every mutation of
        # cache state must report through it — repolint's
        # shared-structure-write rule forbids touching ``_entries``
        # outside this module precisely so this hook stays complete.
        self._event = None

    def __len__(self) -> int:
        return len(self._entries)

    def make_key(
        self, workload: str, params: dict, version: tuple
    ) -> tuple | None:
        """The cache key for one run, or ``None`` if uncacheable."""
        canon = canonical_param(params)
        if canon is None:
            self.stats.skips += 1
            return None
        return (workload, canon, version)

    def get(self, key: tuple) -> Any:
        """The cached output wrapper for ``key`` (``None`` on miss);
        refreshes LRU order on hit.  Array state is copied out, so
        callers cannot poison the entry.  The entry's content digest is
        re-verified first: a corrupted entry is dropped and counted,
        and the caller recomputes — degradation, not a wrong answer."""
        assert_host_owned("result-cache", op="get")
        if self._event is not None:
            self._event("read", key)
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            if self.obs is not None:
                self.obs.cache_event("miss", key[0])
            return None
        output, digest = entry
        if fingerprint(output) != digest:
            del self._entries[key]
            self.stats.corruptions += 1
            self.stats.misses += 1
            if self.obs is not None:
                self.obs.cache_event("corruption", key[0])
                self.obs.cache_event("miss", key[0])
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        if self.obs is not None:
            self.obs.cache_event("hit", key[0])
        return (isolate_output(output),)

    def put(self, key: tuple, output: Any) -> None:
        # Installing a deterministic output under its content key is
        # idempotent — any interleaving installs the same bytes.
        assert_host_owned("result-cache", op="put")
        if self._event is not None:
            self._event("write-idempotent", key)
        stored = isolate_output(output)
        self._entries[key] = (stored, fingerprint(stored))
        self._entries.move_to_end(key)
        while len(self._entries) > self.maxsize:
            evicted, _ = self._entries.popitem(last=False)
            self.stats.evictions += 1
            # Capacity eviction is NOT idempotent: another node's get
            # observes presence or absence depending on order.
            if self._event is not None:
                self._event("write", evicted)
            if self.obs is not None:
                self.obs.cache_event("eviction", evicted[0])

    # ------------------------------------------------------------------
    # Fault-injection hooks (serving soak tests)
    # ------------------------------------------------------------------

    def corrupt_one(self) -> bool:
        """Tamper with the most-recently-used entry's stored output,
        leaving its recorded digest untouched — the next hit on that
        (hottest) key must detect the mismatch and degrade to a
        recompute.  Returns True if an entry was damaged."""
        if not self._entries:
            return False
        key = next(reversed(self._entries))
        if self._event is not None:
            self._event("write", key)
        output, digest = self._entries[key]
        self._entries[key] = (_tamper(output), digest)
        return True

    def evict_one(self) -> bool:
        """Drop the least-recently-used entry (simulated capacity
        pressure); the caller degrades to recompute.  Returns True if
        an entry was dropped."""
        if not self._entries:
            return False
        evicted, _ = self._entries.popitem(last=False)
        self.stats.evictions += 1
        if self._event is not None:
            self._event("write", evicted)
        if self.obs is not None:
            self.obs.cache_event("eviction", evicted[0])
        return True

    def invalidate(self, workload: str | None = None) -> int:
        """Drop every entry (or only one workload's entries).  Returns
        the number of entries dropped."""
        if self._event is not None:
            # Wildcard write: conflicts with every key of the cache
            # (per-workload invalidation still drops unknown-param
            # entries, so workload granularity would under-report).
            self._event("write", (workload,) if workload is not None else None)
        if workload is None:
            dropped = len(self._entries)
            self._entries.clear()
        else:
            stale = [k for k in self._entries if k[0] == workload]
            for k in stale:
                del self._entries[k]
            dropped = len(stale)
        self.stats.invalidations += dropped
        return dropped
