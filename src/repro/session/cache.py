"""Epoch-keyed result caching for session workloads.

Every registered workload is a deterministic function of (workload
name, parameters, graph state), and a session knows exactly when its
graph state changes: the attached stream's ``(epoch, mutations)``
version.  So repeated identical runs on an unchanged graph can be
answered from a cache in O(1) — no instructions dispatched, no sets
registered — while any mutation (or explicit invalidation) naturally
misses, because the version is part of the key.

Parameters are canonicalized structurally (NumPy arrays by value,
graphs by their CSR arrays); a parameter the cache cannot canonicalize
makes that run uncacheable — counted in :class:`CacheStats.skips` —
rather than risking a false hit.
"""

from __future__ import annotations

import dataclasses
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any

import numpy as np


@dataclass
class CacheStats:
    """Hit/miss accounting of one session's result cache."""

    hits: int = 0
    misses: int = 0
    skips: int = 0  # uncacheable runs (views, callables, odd params)
    invalidations: int = 0  # entries dropped by explicit invalidation
    evictions: int = 0  # entries dropped by the LRU size bound


def isolate_output(value: Any):
    """A defensive copy of a cached output's mutable array state.

    Cached outputs are stored and served across runs; without this, a
    caller mutating a returned array in place would poison every later
    cache hit (and the first caller's result would alias the cache
    entry).  Arrays are copied recursively through the common
    containers; other objects pass through by reference.
    """
    if isinstance(value, np.ndarray):
        return value.copy()
    if isinstance(value, list):
        return [isolate_output(v) for v in value]
    if isinstance(value, tuple):
        if hasattr(value, "_fields"):  # NamedTuple: preserve the type
            return type(value)(*(isolate_output(v) for v in value))
        return tuple(isolate_output(v) for v in value)
    if isinstance(value, dict):
        return {k: isolate_output(v) for k, v in value.items()}
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return dataclasses.replace(
            value,
            **{
                f.name: isolate_output(getattr(value, f.name))
                for f in dataclasses.fields(value)
                if f.init
            },
        )
    return value


def canonical_param(value: Any):
    """A hashable, by-value canonical form of one workload parameter.

    Returns ``None`` when the value cannot be canonicalized safely —
    the caller must then skip caching (``None`` is itself encoded, so
    a literal ``None`` parameter stays cacheable).
    """
    if value is None:
        return ("none",)
    if isinstance(value, (bool, int, float, str, bytes)):
        return (type(value).__name__, value)
    if isinstance(value, np.generic):
        return ("npscalar", value.item())
    if isinstance(value, np.ndarray):
        return ("ndarray", value.shape, value.dtype.str, value.tobytes())
    if isinstance(value, (list, tuple)):
        parts = tuple(canonical_param(v) for v in value)
        if any(p is None for p in parts):
            return None
        return ("seq", parts)
    if isinstance(value, (set, frozenset)):
        parts = tuple(sorted(map(canonical_param, value), key=repr))
        if any(p is None for p in parts):
            return None
        return ("set", parts)
    if isinstance(value, dict):
        items = []
        for k in sorted(value, key=repr):
            part = canonical_param(value[k])
            if part is None:
                return None
            items.append((repr(k), part))
        return ("dict", tuple(items))
    offsets = getattr(value, "offsets", None)
    targets = getattr(value, "targets", None)
    if isinstance(offsets, np.ndarray) and isinstance(targets, np.ndarray):
        # CSRGraph / DiGraph pattern arguments, keyed by structure.
        return ("csr", offsets.tobytes(), targets.tobytes())
    return None


class ResultCache:
    """A bounded LRU cache of workload outputs keyed on
    ``(workload, canonical params, stream version)``."""

    def __init__(self, maxsize: int = 128):
        self.maxsize = int(maxsize)
        self._entries: OrderedDict[tuple, Any] = OrderedDict()
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._entries)

    def make_key(
        self, workload: str, params: dict, version: tuple
    ) -> tuple | None:
        """The cache key for one run, or ``None`` if uncacheable."""
        canon = canonical_param(params)
        if canon is None:
            self.stats.skips += 1
            return None
        return (workload, canon, version)

    def get(self, key: tuple) -> Any:
        """The cached output wrapper for ``key`` (``None`` on miss);
        refreshes LRU order on hit.  Array state is copied out, so
        callers cannot poison the entry."""
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return (isolate_output(entry[0]),)

    def put(self, key: tuple, output: Any) -> None:
        self._entries[key] = (isolate_output(output),)
        self._entries.move_to_end(key)
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def invalidate(self, workload: str | None = None) -> int:
        """Drop every entry (or only one workload's entries).  Returns
        the number of entries dropped."""
        if workload is None:
            dropped = len(self._entries)
            self._entries.clear()
        else:
            stale = [k for k in self._entries if k[0] == workload]
            for k in stale:
                del self._entries[k]
            dropped = len(stale)
        self.stats.invalidations += dropped
        return dropped
