"""Session-centric workload API (the persistent Fig. 3 software layer).

* :class:`ExecutionConfig` — one frozen, validated home for every
  execution knob that used to be copy-pasted across the one-shot
  entry-point signatures.
* :class:`SisaSession` — owns one ``SisaContext`` per graph and lazily
  caches the SetGraph, degeneracy order and oriented SetGraph, so
  repeated runs skip all setup while engine epoch marks keep per-run
  accounting exact.
* :func:`workload` / :func:`available_workloads` — the registry behind
  ``session.run("triangles")`` and friends.
* :class:`RunResult` — the uniform result record (output, per-run
  cycles, instruction stats, config echo).

The built-in workload definitions live in
:mod:`repro.session.workloads` and are registered on first use.
"""

from repro.session.cache import CacheStats, ResultCache
from repro.session.config import ExecutionConfig
from repro.session.plan import (
    BurstUnit,
    PlanExecutor,
    PlanStage,
    WorkloadPlan,
)
from repro.session.pool import SessionPool
from repro.session.registry import (
    WorkloadSpec,
    available_workloads,
    get_workload,
    workload,
)
from repro.session.result import FailedResult, RunResult
from repro.session.session import SisaSession, run_workload

__all__ = [
    "BurstUnit",
    "CacheStats",
    "ExecutionConfig",
    "FailedResult",
    "PlanExecutor",
    "PlanStage",
    "ResultCache",
    "RunResult",
    "SessionPool",
    "SisaSession",
    "WorkloadPlan",
    "WorkloadSpec",
    "available_workloads",
    "get_workload",
    "run_workload",
    "workload",
]
