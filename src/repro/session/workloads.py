"""Built-in session workloads.

Each workload wraps one of the set-centric algorithm kernels
(``repro.algorithms.*_on``) and pulls its input structures from the
owning session's caches, so repeated runs skip context construction,
neighborhood-set registration and degeneracy orientation.  The kernels
themselves are untouched — a cold session issues exactly the
instruction stream the deprecated one-shot entry points issued.

This module is imported lazily by the registry (the algorithm modules
import ``repro.session`` for their deprecated shims).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.algorithms.bfs import bfs_on
from repro.algorithms.bron_kerbosch import maximal_cliques_on
from repro.algorithms.clique_star import (
    kclique_star_from_k1_on,
    kclique_star_intersect_on,
)
from repro.algorithms.clustering import clusters_from_edges, jarvis_patrick_on
from repro.algorithms.degeneracy import approx_degeneracy_on
from repro.algorithms.fsm import frequent_subgraphs_on
from repro.algorithms.kclique import four_clique_count_on, kclique_count_on
from repro.algorithms.link_prediction import (
    LinkPredictionResult,
    candidate_pairs,
    edge_ids,
)
from repro.algorithms.similarity import all_pairs_similarity_on, similarity_on
from repro.algorithms.subgraph_iso import subgraph_isomorphism_on
from repro.algorithms.triangles import triangle_count_oriented
from repro.errors import ConfigError
from repro.graphs.csr import CSRGraph
from repro.runtime.setgraph import SetGraph
from repro.session.registry import workload
from repro.streaming.incremental import degrees_of, local_triangle_counts

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.session.plan import PlanStage


def _batch(session, batch):
    return session.config.batch if batch is None else batch


# ---------------------------------------------------------------------------
# Stage compilers (plan API)
#
# Each builder decomposes its workload into the declarative stage list a
# WorkloadPlan executes: prep (which cached structure to touch), the
# count-form frontier bursts as schedulable units, and host-side
# finalization.  Executed in order, the stages reproduce the eager
# kernel's instruction stream op for op — asserted bit-identical in
# tests — while exposing the bursts for cross-plan fusion and the
# shared sub-requests (e.g. the triangle count inside
# clustering_coefficient) for dedup.  A builder returns None when the
# requested parameters are not decomposable (e.g. batch=False); the
# plan then falls back to one opaque call stage.
# ---------------------------------------------------------------------------


def _prep_stage(which: str) -> "PlanStage":
    from repro.session.plan import PlanStage

    def run(session, state, *, _which=which):
        if _which in ("undirected", "both"):
            session.setgraph
        if _which in ("oriented", "both"):
            session.oriented_setgraph
        return None

    # A prep stage *constructs* the cached structure it names; the bare
    # name in ``writes`` expands to the ``struct:`` tokens (build-once,
    # so concurrent prep of one struct is sharing, not a WAW hazard).
    return PlanStage(
        kind="call",
        label=f"prep:{which}",
        reads=(which,),
        writes=(which,),
        run=run,
    )


def _triangle_burst_stage() -> "PlanStage":
    """The shared triangle-count burst stage (Algorithm 1's oriented
    ``|N+(u) ∩ N+(v)|`` bursts) — the sub-request both ``triangles``
    and ``clustering_coefficient`` plans schedule, under one dedup key."""
    from repro.session.plan import BurstUnit, PlanStage, subrequest_key

    def units(session, state):
        sg = session.oriented_setgraph
        ctx = session.ctx
        state["triangles"] = 0

        def sink(counts):
            state["triangles"] += int(counts.sum())

        for u in range(sg.num_vertices):
            lane = ctx.begin_task()
            out_u = sg.neighborhood(u)
            nbrs = ctx.elements(out_u)
            if nbrs.size:
                yield BurstUnit(
                    a=out_u,
                    bs=[sg.neighborhood(int(v)) for v in nbrs],
                    kind="intersect",
                    lane=lane,
                    sink=sink,
                    writes=("state:triangles",),
                )

    return PlanStage(
        kind="bursts",
        label="bursts:triangles",
        reads=("oriented",),
        key=subrequest_key("triangles", {"batch": True}),
        units=units,
        result=lambda state: state["triangles"],
        seed=lambda state, value: state.__setitem__("triangles", value),
        writes=("state:triangles",),
        seeds=("state:triangles",),
    )


def _triangles_stages(session, params):
    if not _batch(session, params.get("batch")):
        return None  # the scalar per-pair stream is not decomposable
    return [_prep_stage("oriented"), _triangle_burst_stage()]


def _normalize_batch_only(session, params):
    """Cache-key normalizer for workloads whose only knob is ``batch``:
    ``None`` resolves against the session config, so ``run("triangles")``
    and a plan's ``("triangles", {"batch": True})`` sub-request share
    one key (``batch`` does not change outputs or modeled cycles)."""
    return {"batch": _batch(session, params.get("batch"))}


def _clustering_coefficient_stages(session, params):
    from repro.session.plan import PlanStage

    if not _batch(session, params.get("batch")):
        return None

    def finalize(session, state):
        count = state["triangles"]
        degrees = session.current_graph.degrees.astype(float)
        wedges = float((degrees * (degrees - 1) / 2).sum())
        return 3.0 * count / wedges if wedges > 0 else 0.0

    return [
        _prep_stage("oriented"),
        _triangle_burst_stage(),
        PlanStage(
            kind="call",
            label="finalize:wedges",
            reads=("state:triangles",),
            run=finalize,
        ),
    ]


def _local_clustering_stages(session, params):
    from repro.session.plan import BurstUnit, PlanStage, subrequest_key

    def units(session, state):
        sg = session.setgraph
        ctx = session.ctx
        counts = state["counts"] = np.zeros(sg.num_vertices, dtype=np.int64)
        for v in range(sg.num_vertices):
            lane = ctx.begin_task()
            nbrs = ctx.elements(sg.neighborhood(v))
            if nbrs.size:

                def sink(burst, *, _v=v):
                    counts[_v] = int(burst.sum()) // 2

                yield BurstUnit(
                    a=sg.neighborhood(v),
                    bs=[sg.neighborhood(int(u)) for u in nbrs],
                    kind="intersect",
                    lane=lane,
                    sink=sink,
                    writes=("state:counts",),
                )

    def finalize(session, state):
        counts = state["counts"]
        d = degrees_of(session.setgraph).astype(np.float64)
        denom = d * (d - 1.0)
        return np.divide(
            2.0 * counts.astype(np.float64),
            denom,
            out=np.zeros(counts.size, dtype=np.float64),
            where=denom > 0,
        )

    return [
        _prep_stage("undirected"),
        PlanStage(
            kind="bursts",
            label="bursts:local_triangles",
            reads=("undirected",),
            key=subrequest_key("local_triangle_counts", {}),
            units=units,
            result=lambda state: state["counts"],
            seed=lambda state, value: state.__setitem__("counts", value),
            writes=("state:counts",),
            seeds=("state:counts",),
        ),
        PlanStage(
            kind="call",
            label="finalize:coefficients",
            reads=("state:counts",),
            run=finalize,
        ),
    ]


# Count measures whose per-run burst + hoisted cardinality fetches the
# stage compiler can reproduce exactly (shared-neighbor measures batch
# through the materializing fan-out and stay opaque).
_PLANNABLE_MEASURES = ("jaccard", "overlap", "common_neighbors", "total_neighbors")


def _similarity_pairs_stages(session, params):
    from repro.algorithms.similarity import iter_shared_first_runs
    from repro.session.plan import BurstUnit, PlanStage, subrequest_key

    measure = params.get("measure", "jaccard")
    if (
        "pairs" not in params  # let the opaque path raise the usual error
        or not _batch(session, params.get("batch"))
        or measure not in _PLANNABLE_MEASURES
    ):
        return None
    pairs = np.asarray(params["pairs"], dtype=np.int64)
    kind = "union" if measure == "total_neighbors" else "intersect"

    def units(session, state):
        sg = session.setgraph
        ctx = session.ctx
        scores = state["scores"] = np.zeros(len(pairs), dtype=np.float64)
        for u, i, j in iter_shared_first_runs(pairs):
            lane = ctx.begin_task()
            vs = [int(p[1]) for p in pairs[i:j]]
            nu = sg.neighborhood(u)
            nvs = [sg.neighborhood(v) for v in vs]

            def sink(counts, *, _i=i, _j=j, _nu=nu, _nvs=nvs):
                # Replicates similarity_batch_on's post-burst stream:
                # the |N(u)| fetch hoisted once per frontier, then one
                # cardinality per frontier operand.
                if measure in ("total_neighbors", "common_neighbors"):
                    scores[_i:_j] = counts.astype(np.float64)
                    return
                inter = counts.astype(np.float64)
                du = ctx.cardinality(_nu)
                dvs = np.asarray(
                    [ctx.cardinality(nv) for nv in _nvs], dtype=np.float64
                )
                if measure == "jaccard":
                    denom = du + dvs - inter
                else:  # overlap
                    denom = np.minimum(float(du), dvs)
                scores[_i:_j] = np.divide(
                    inter, denom, out=np.zeros_like(inter), where=denom > 0
                )

            yield BurstUnit(
                a=nu,
                bs=nvs,
                kind=kind,
                lane=lane,
                sink=sink,
                writes=("state:scores",),
            )

    return [
        _prep_stage("undirected"),
        PlanStage(
            kind="bursts",
            label=f"bursts:watchlist-{measure}",
            reads=("undirected",),
            key=subrequest_key(
                "similarity_pairs",
                {"pairs": pairs, "measure": measure, "batch": True},
            ),
            units=units,
            result=lambda state: state["scores"],
            seed=lambda state, value: state.__setitem__("scores", value),
            writes=("state:scores",),
            seeds=("state:scores",),
        ),
    ]


# ---------------------------------------------------------------------------
# Pattern matching
# ---------------------------------------------------------------------------


@workload(
    "triangles",
    requires="oriented",
    view_capable=True,
    description="Triangle count (Algorithm 1, oriented count bursts)",
    stages=_triangles_stages,
    normalize=_normalize_batch_only,
)
def _triangles(session, *, batch=None, view=None):
    ctx = session.ctx
    if view is not None:
        # Unoriented full recompute on a snapshot / live view: per-
        # vertex count bursts; each triangle is seen twice per vertex.
        return int(local_triangle_counts(view, ctx).sum()) // 3
    return triangle_count_oriented(
        session.oriented_setgraph, ctx, batch=_batch(session, batch)
    )


@workload(
    "clustering_coefficient",
    requires="oriented",
    description="Global clustering coefficient 3T / open wedges",
    stages=_clustering_coefficient_stages,
    normalize=_normalize_batch_only,
    subrequests=("triangles",),
)
def _clustering_coefficient(session, *, batch=None):
    count = triangle_count_oriented(
        session.oriented_setgraph, session.ctx, batch=_batch(session, batch)
    )
    degrees = session.current_graph.degrees.astype(float)
    wedges = float((degrees * (degrees - 1) / 2).sum())
    return 3.0 * count / wedges if wedges > 0 else 0.0


@workload(
    "local_clustering",
    requires="undirected",
    view_capable=True,
    description="Per-vertex local clustering coefficients",
    stages=_local_clustering_stages,
    subrequests=("local_triangle_counts",),
)
def _local_clustering(session, *, view=None):
    target = view if view is not None else session.setgraph
    counts = local_triangle_counts(target, session.ctx)
    degrees = degrees_of(target)
    d = degrees.astype(np.float64)
    denom = d * (d - 1.0)
    return np.divide(
        2.0 * counts.astype(np.float64),
        denom,
        out=np.zeros(counts.size, dtype=np.float64),
        where=denom > 0,
    )


@workload(
    "kclique",
    requires="oriented",
    effect_writes=("sets:scratch",),
    description="k-clique counting/listing (Algorithm 3)",
)
def _kclique(session, *, k, max_patterns=None, collect=False, batch=None):
    return kclique_count_on(
        session.ctx,
        session.oriented_setgraph,
        k,
        max_patterns=max_patterns,
        collect=collect,
        batch=_batch(session, batch),
    )


@workload(
    "four_clique",
    requires="oriented",
    effect_writes=("sets:scratch",),
    description="Specialized 4-clique counting (Table 4)",
)
def _four_clique(session, *, max_patterns=None, batch=None):
    return four_clique_count_on(
        session.ctx,
        session.oriented_setgraph,
        max_patterns=max_patterns,
        batch=_batch(session, batch),
    )


@workload(
    "kclique_star",
    # Algorithm 5 (from_k1) reads only the orientation; Algorithm 4
    # (intersect) also intersects *undirected* neighborhoods.
    requires=lambda params: (
        "both" if params.get("variant") == "intersect" else "oriented"
    ),
    description="k-clique-star listing (Algorithms 4 and 5)",
    effect_writes=("sets:scratch",),
)
def _kclique_star(session, *, k, variant="from_k1", max_patterns=None):
    if variant not in ("intersect", "from_k1"):
        raise ConfigError("variant must be 'intersect' or 'from_k1'")
    ctx = session.ctx
    oriented = session.oriented_setgraph
    if variant == "from_k1":
        return kclique_star_from_k1_on(ctx, oriented, k, max_patterns=max_patterns)
    return kclique_star_intersect_on(
        session.current_graph,
        ctx,
        session.setgraph,
        oriented,
        k,
        max_patterns=max_patterns,
    )


@workload(
    "maximal_cliques",
    requires="undirected",
    effect_writes=("sets:scratch",),
    description="Bron-Kerbosch maximal clique listing (Algorithm 2)",
)
def _maximal_cliques(session, *, max_patterns=None, max_patterns_per_root=None):
    return maximal_cliques_on(
        session.current_graph,
        session.ctx,
        session.setgraph,
        max_patterns=max_patterns,
        max_patterns_per_root=max_patterns_per_root,
        order=session.degeneracy.order,
    )


@workload(
    "subgraph_iso",
    requires="undirected",
    effect_writes=("sets:scratch",),
    description="VF2 subgraph isomorphism (Algorithm 7)",
)
def _subgraph_iso(
    session,
    *,
    pattern,
    target_labels=None,
    pattern_labels=None,
    max_matches=None,
    collect=False,
):
    return subgraph_isomorphism_on(
        session.current_graph,
        session.ctx,
        session.setgraph,
        pattern,
        target_labels=target_labels,
        pattern_labels=pattern_labels,
        max_matches=max_matches,
        collect=collect,
    )


@workload(
    "fsm",
    requires="undirected",
    effect_writes=("sets:scratch",),
    description="Apriori frequent subgraph mining (Algorithm 8)",
)
def _fsm(session, *, sigma=0.5, max_size=3, max_matches_per_pattern=2_000):
    return frequent_subgraphs_on(
        session.current_graph,
        session.ctx,
        session.setgraph,
        sigma=sigma,
        max_size=max_size,
        max_matches_per_pattern=max_matches_per_pattern,
    )


# ---------------------------------------------------------------------------
# Learning / similarity
# ---------------------------------------------------------------------------


@workload(
    "similarity",
    requires="undirected",
    effect_writes=("sets:scratch",),
    description="Vertex-pair neighborhood similarity (Algorithm 9)",
)
def _similarity(session, *, u, v, measure="jaccard"):
    return similarity_on(session.ctx, session.setgraph, u, v, measure=measure)


@workload(
    "similarity_pairs",
    requires="undirected",
    view_capable=True,
    description="Batched similarity scores for a pair list",
    stages=_similarity_pairs_stages,
    normalize=lambda session, params: {
        "pairs": np.asarray(params["pairs"], dtype=np.int64),
        "measure": params.get("measure", "jaccard"),
        "batch": _batch(session, params.get("batch")),
    }
    if "pairs" in params
    else params,
)
def _similarity_pairs(session, *, pairs, measure="jaccard", batch=None, view=None):
    target = view if view is not None else session.setgraph
    return all_pairs_similarity_on(
        session.ctx,
        target,
        np.asarray(pairs, dtype=np.int64),
        measure=measure,
        batch=_batch(session, batch),
    )


@workload(
    "jarvis_patrick",
    requires="undirected",
    effect_writes=("sets:scratch",),
    description="Jarvis-Patrick similarity clustering (Algorithm 11)",
)
def _jarvis_patrick(session, *, tau=2.0, measure="common_neighbors", batch=None):
    graph = session.current_graph
    kept = jarvis_patrick_on(
        graph,
        session.ctx,
        session.setgraph,
        tau=tau,
        measure=measure,
        batch=_batch(session, batch),
    )
    clusters = clusters_from_edges(graph.num_vertices, kept)
    return {"edges": kept, "clusters": clusters}


@workload(
    "link_prediction",
    requires="none",
    effect_writes=("sets:scratch",),
    description="Link prediction + accuracy test (Algorithm 10)",
)
def _link_prediction(
    session,
    *,
    removal_fraction=0.1,
    measure="jaccard",
    batch=None,
    top_k=None,
    candidate_limit=20_000,
    seed=7,
):
    """Full Algorithm 10 pipeline on a per-run sparsified graph.

    The sparsification (and thus the candidate SetGraph) is part of the
    workload, not the session: each run removes its own random edge
    subset, so the session's cached sets are not used here and the
    per-run setup is re-registered (uncharged) every time.  The per-run
    sets are released (model-internal, uncharged — the legacy one-shot
    path discarded the whole context instead) before returning, so a
    long-lived session stays bounded under repeated runs.
    """
    if not 0.0 < removal_fraction < 1.0:
        raise ConfigError("removal_fraction must be in (0, 1)")
    ctx = session.ctx
    config = session.config
    graph = session.current_graph
    n = graph.num_vertices
    rng = np.random.default_rng(seed)
    edges = graph.edge_array()
    m = edges.shape[0]
    removed_count = max(1, int(removal_fraction * m))
    removed_idx = rng.choice(m, size=removed_count, replace=False)
    removed_mask = np.zeros(m, dtype=bool)
    removed_mask[removed_idx] = True
    sparse_edges = edges[~removed_mask]
    removed_edges = edges[removed_mask]

    sparse_graph = CSRGraph.from_edges(n, sparse_edges)
    sg = SetGraph.from_graph(
        sparse_graph, ctx, t=config.t, budget=config.budget, policy=config.policy
    )

    # E_rndm and (later) E_predict live in the pair-id universe.
    pair_universe = n * n
    e_rndm = ctx.create_set(
        edge_ids(removed_edges, n), universe=pair_universe, dense=False
    )

    pairs = candidate_pairs(sparse_graph, limit=candidate_limit)
    scores = all_pairs_similarity_on(
        ctx, sg, pairs, measure=measure, batch=_batch(session, batch)
    )
    if top_k is None:
        top_k = removed_count
    top_k = min(top_k, len(pairs))
    top_idx = np.argsort(-scores, kind="stable")[:top_k]
    predicted = pairs[np.sort(top_idx)]
    e_predict = ctx.create_set(
        edge_ids(predicted, n) if len(predicted) else [],
        universe=pair_universe,
        dense=False,
    )
    eff = ctx.intersect_count(e_predict, e_rndm)
    for sid in (*sg.set_ids, e_rndm, e_predict):
        ctx.release(sid)
    return LinkPredictionResult(
        effectiveness=eff,
        removed_edges=removed_count,
        predicted_edges=top_k,
        precision=eff / top_k if top_k else 0.0,
    )


# ---------------------------------------------------------------------------
# Orders / traversal
# ---------------------------------------------------------------------------


@workload(
    "approx_degeneracy",
    requires="undirected",
    effect_writes=("sets:scratch",),
    description="Streaming approximate degeneracy order (Algorithm 6)",
)
def _approx_degeneracy(session, *, eps=0.5):
    return approx_degeneracy_on(
        session.current_graph, session.ctx, session.setgraph, eps=eps
    )


@workload(
    "bfs",
    requires="undirected",
    effect_writes=("sets:scratch",),
    description="Set-centric direction-optimizing BFS (Algorithm 12)",
)
def _bfs(session, *, root=0, direction="auto"):
    return bfs_on(
        session.current_graph,
        session.ctx,
        session.setgraph,
        root,
        direction=direction,
    )
