"""Benchmark harness utilities."""

from repro.bench.harness import Cell, ResultTable, run_three_variants

__all__ = ["Cell", "ResultTable", "run_three_variants"]
