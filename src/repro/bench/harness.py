"""Experiment harness: uniform runners for the three Fig. 6 variants
(non-set / set-based / sisa) and table/series printers.

The benchmark scripts in ``benchmarks/`` use this module to produce
the paper's rows: for each (problem, graph) cell they run all three
variants, check that functional outputs agree, and report simulated
runtimes in millions of cycles (the paper's Fig. 6 unit).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.analysis.summaries import SpeedupSummary, summarize_speedups


@dataclass
class Cell:
    """One (problem, graph, variant) measurement."""

    problem: str
    graph: str
    variant: str
    runtime_mcycles: float
    output_digest: Any = None


@dataclass
class ResultTable:
    """Accumulates cells and prints paper-style summaries."""

    title: str
    cells: list[Cell] = field(default_factory=list)

    def add(
        self,
        problem: str,
        graph: str,
        variant: str,
        runtime_cycles: float,
        output_digest: Any = None,
    ) -> None:
        self.cells.append(
            Cell(problem, graph, variant, runtime_cycles / 1e6, output_digest)
        )

    def runtimes(self, problem: str, variant: str) -> list[float]:
        ordered_graphs = self.graphs_for(problem)
        lookup = {
            cell.graph: cell.runtime_mcycles
            for cell in self.cells
            if cell.problem == problem and cell.variant == variant
        }
        return [lookup[g] for g in ordered_graphs if g in lookup]

    def graphs_for(self, problem: str) -> list[str]:
        seen: list[str] = []
        for cell in self.cells:
            if cell.problem == problem and cell.graph not in seen:
                seen.append(cell.graph)
        return seen

    def problems(self) -> list[str]:
        seen: list[str] = []
        for cell in self.cells:
            if cell.problem not in seen:
                seen.append(cell.problem)
        return seen

    def variants(self) -> list[str]:
        seen: list[str] = []
        for cell in self.cells:
            if cell.variant not in seen:
                seen.append(cell.variant)
        return seen

    def summary(
        self, problem: str, baseline: str, improved: str
    ) -> SpeedupSummary:
        return summarize_speedups(
            self.runtimes(problem, baseline), self.runtimes(problem, improved)
        )

    # -- printing ------------------------------------------------------------

    def print_problem(self, problem: str) -> None:
        variants = self.variants()
        graphs = self.graphs_for(problem)
        width = max((len(g) for g in graphs), default=10) + 2
        header = f"{'graph':<{width}}" + "".join(
            f"{v:>14}" for v in variants
        )
        print(f"\n== {self.title} :: {problem} (runtime, Mcycles) ==")
        print(header)
        for graph in graphs:
            row = f"{graph:<{width}}"
            for variant in variants:
                value = next(
                    (
                        cell.runtime_mcycles
                        for cell in self.cells
                        if cell.problem == problem
                        and cell.graph == graph
                        and cell.variant == variant
                    ),
                    None,
                )
                row += f"{value:>14.3f}" if value is not None else f"{'--':>14}"
            print(row)

    def print_speedup_lines(
        self, problem: str, *, target: str = "sisa"
    ) -> None:
        """The paper's four-number summary line per problem plot."""
        for baseline in self.variants():
            if baseline == target:
                continue
            summary = self.summary(problem, baseline, target)
            print(
                f"  {target} over {baseline}: "
                f"avg-of-speedups={summary.avg_of_speedups:.2f}x, "
                f"speedup-of-avgs={summary.speedup_of_avgs:.2f}x"
            )

    def print_all(self) -> None:
        for problem in self.problems():
            self.print_problem(problem)
            self.print_speedup_lines(problem)


def run_three_variants(
    problem: str,
    graph_name: str,
    table: ResultTable,
    *,
    nonset: Callable[[], tuple[Any, float]] | None,
    set_based: Callable[[], tuple[Any, float]],
    sisa: Callable[[], tuple[Any, float]],
    check_outputs: bool = True,
) -> None:
    """Run the three Fig. 6 variants for one cell and record runtimes.

    Each callable returns ``(output_digest, runtime_cycles)``.  When
    ``check_outputs`` is set, all produced digests must agree (the three
    implementations solve the same problem).
    """
    digests = []
    if nonset is not None:
        out, cycles = nonset()
        table.add(problem, graph_name, "non-set", cycles, out)
        digests.append(out)
    out, cycles = set_based()
    table.add(problem, graph_name, "set-based", cycles, out)
    digests.append(out)
    out, cycles = sisa()
    table.add(problem, graph_name, "sisa", cycles, out)
    digests.append(out)
    if check_outputs and len({repr(d) for d in digests}) != 1:
        raise AssertionError(
            f"variant outputs disagree for {problem}/{graph_name}: {digests}"
        )
