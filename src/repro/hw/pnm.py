"""SISA-PNM timing: near-memory logic-layer cores (Tesseract-style).

Implements the paper's Section 8.3 performance models:

* Streaming (merge-based ops on two SAs):
      l_M + W * max(|A|, |B|) / min(b_M, b_L)
* Random accesses (galloping):
      l_M * min(|A|, |B|) * log2(max(|A|, |B|))
  with the near-memory access latency substituted for l_M, since the
  probes never leave the cube.

Streaming traffic is charged as ``memory_bytes`` so the engine can
apply bandwidth proportionality (each active vault contributes its own
16 GB/s; Section 8.4).
"""

from __future__ import annotations

import math

from repro.hw.config import HardwareConfig
from repro.hw.cost import Cost


class PnmBackend:
    """Timing model for set operations executed by logic-layer cores."""

    def __init__(self, config: HardwareConfig):
        self.config = config

    @property
    def _word_bytes(self) -> float:
        return self.config.word_bits / 8

    def streaming(self, size_a: int, size_b: int, *, output_size: int = 0) -> Cost:
        """Merge-style pass over two sparse arrays plus the output write."""
        streamed = self._word_bytes * (max(size_a, size_b) + output_size)
        compute = self.config.pnm_cycles_per_element * (size_a + size_b)
        return Cost(
            compute_cycles=compute,
            memory_bytes=streamed,
            latency_cycles=self.config.effective_op_latency_cycles,
        )

    def galloping(self, size_a: int, size_b: int, *, output_size: int = 0) -> Cost:
        """Binary-search the smaller set into the larger one."""
        small = min(size_a, size_b)
        big = max(size_a, size_b)
        if small == 0:
            return Cost(latency_cycles=self.config.effective_op_latency_cycles)
        probes = small * max(1.0, math.log2(max(big, 2)))
        return Cost(
            compute_cycles=self.config.pnm_cycles_per_element * small,
            memory_bytes=self._word_bytes * output_size,
            latency_cycles=self.config.effective_op_latency_cycles
            + probes * self.config.pnm_random_access_cycles,
        )

    def sa_probe_db(self, sa_size: int, *, output_size: int = 0) -> Cost:
        """Iterate an SA with O(1) bit probes into a DB (instruction 0x3).

        Successive bit probes mostly hit the open DRAM row holding the
        bitvector, so each costs ~2 core cycles rather than a full
        random access.
        """
        return Cost(
            compute_cycles=(self.config.pnm_cycles_per_element + 2.0) * sa_size,
            memory_bytes=self._word_bytes * (sa_size + output_size),
            latency_cycles=self.config.effective_op_latency_cycles,
        )

    def element_update_sa(self, sa_size: int) -> Cost:
        """Add/remove one element of a sorted SA: O(|A|) data movement."""
        return Cost(
            memory_bytes=self._word_bytes * sa_size,
            latency_cycles=self.config.effective_op_latency_cycles,
        )

    def scan(self, size: int) -> Cost:
        """Stream one SA (e.g. for iteration or copy-out)."""
        return Cost(
            compute_cycles=self.config.pnm_cycles_per_element * size,
            memory_bytes=self._word_bytes * size,
            latency_cycles=self.config.effective_op_latency_cycles,
        )

    def membership_sorted(self, size: int) -> Cost:
        steps = max(1.0, math.log2(max(size, 2)))
        return Cost(latency_cycles=steps * self.config.pnm_random_access_cycles)

    def membership_unsorted(self, size: int) -> Cost:
        return self.scan(size)

    def membership_dense(self) -> Cost:
        return Cost(latency_cycles=self.config.pnm_random_access_cycles)
