"""Host-CPU timing: the baseline platform for non-SISA instructions.

Models the paper's out-of-order manycore (Section 9.1, "Platform for
non-SISA Instructions & Baselines").  Two families of primitives:

* the *non-set* baselines' kernels — binary-search edge probes into
  CSR, neighborhood scans, hash probes;
* the *set-based* baselines' kernels — the same merge / galloping /
  bitwise set algorithms as SISA, but executed by host cores through
  the cache hierarchy, paying per-element instruction costs and
  competing for saturating shared memory bandwidth.

The contention model (``CpuConfig.effective_bandwidth_bytes_per_cycle``)
is what reproduces Fig. 1: past the saturation knee, extra threads stop
helping and the stall fraction climbs.
"""

from __future__ import annotations

import math

from repro.hw.config import CpuConfig
from repro.hw.cost import Cost


class CpuBackend:
    """Timing model for work executed on the host CPU."""

    def __init__(self, config: CpuConfig):
        self.config = config

    # -- non-set baseline primitives ----------------------------------------

    def edge_probe(self, degree: int) -> Cost:
        """Binary-search probe `is (u, v) an edge?` into a sorted
        neighborhood of the given degree.  Each level touches a fresh
        cache line until the search interval fits in one line."""
        steps = max(1.0, math.log2(max(degree, 2)))
        return Cost(
            compute_cycles=steps * self.config.probe_step_cycles,
            memory_bytes=16.0 * steps,
        )

    def neighborhood_scan(self, degree: int) -> Cost:
        """Stream one neighborhood (sequential, line-friendly)."""
        word_bytes = 4
        return Cost(
            compute_cycles=self.config.cycles_per_scan_element * degree,
            memory_bytes=word_bytes * degree,
        )

    def hash_probe(self) -> Cost:
        """One hash-table probe.  Scattered buckets mean most probes
        fetch a fresh cache line — this traffic is what makes probe-
        heavy mining codes bandwidth-bound (Fig. 1)."""
        return Cost(
            compute_cycles=self.config.cycles_per_hash_probe,
            memory_bytes=0.75 * self.config.cache_line_bytes,
            latency_cycles=self.config.hash_probe_latency_cycles,
        )

    def random_access(self) -> Cost:
        """One dependent random memory access (pointer chase)."""
        return Cost(latency_cycles=self.config.dram_latency_cycles)

    def alu(self, operations: float) -> Cost:
        return Cost(compute_cycles=operations)

    # -- set-algorithm primitives on the host ---------------------------------

    def merge(self, size_a: int, size_b: int, *, output_size: int = 0) -> Cost:
        """Two-pointer merge of sorted arrays on a host core: branchy,
        ~3 cycles/element, plus streaming traffic."""
        word_bytes = 4
        elements = size_a + size_b
        return Cost(
            compute_cycles=self.config.cycles_per_merge_element * elements,
            memory_bytes=word_bytes * (elements + output_size),
        )

    def galloping(self, size_a: int, size_b: int, *, output_size: int = 0) -> Cost:
        small = min(size_a, size_b)
        big = max(size_a, size_b)
        if small == 0:
            return Cost()
        probes = small * max(1.0, math.log2(max(big, 2)))
        word_bytes = 4
        return Cost(
            compute_cycles=probes * self.config.probe_step_cycles,
            memory_bytes=word_bytes * output_size,
        )

    def bitwise(self, universe_bits: int, *, output: bool = True) -> Cost:
        """Word-at-a-time bitvector op on a host core: the CPU must
        stream all n bits of both operands (and the result) through the
        cache hierarchy — no in-situ shortcut."""
        words = universe_bits / 64
        passes = 3 if output else 2
        return Cost(
            compute_cycles=self.config.cycles_per_scan_element * words,
            memory_bytes=passes * universe_bits / 8,
        )

    def sa_probe_db(self, sa_size: int, *, output_size: int = 0) -> Cost:
        word_bytes = 4
        return Cost(
            compute_cycles=2.0 * sa_size,
            memory_bytes=word_bytes * (sa_size + output_size),
        )

    def element_update_sa(self, sa_size: int) -> Cost:
        return Cost(
            compute_cycles=self.config.cycles_per_scan_element * sa_size,
            memory_bytes=4 * sa_size,
        )

    def bit_write(self) -> Cost:
        return Cost(compute_cycles=self.config.probe_step_cycles)

    def membership_sorted(self, size: int) -> Cost:
        steps = max(1.0, math.log2(max(size, 2)))
        return Cost(compute_cycles=steps * self.config.probe_step_cycles)

    def membership_unsorted(self, size: int) -> Cost:
        return self.neighborhood_scan(size)

    def membership_dense(self) -> Cost:
        return Cost(compute_cycles=self.config.probe_step_cycles)

    def effective_bandwidth_bytes_per_cycle(self, threads: int) -> float:
        return self.config.effective_bandwidth_bytes_per_cycle(threads)
