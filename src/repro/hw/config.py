"""Hardware configuration: the Table 2 symbols and platform parameters.

Defaults follow the paper's Section 9.1 platform:

* SISA-PNM matches Tesseract: 16 8-GB HMC cubes, 32 vaults/cube, one
  in-order core per vault, 16 GB/s memory bandwidth per vault, and
  *bandwidth proportionality* (more active vaults = more aggregate
  bandwidth).
* SISA-PUM matches Ambit: 8 KB DRAM rows, bulk bitwise AND/OR/NOT over
  ``q`` subarray-parallel rows per step.
* The host for non-SISA instructions is an out-of-order manycore whose
  memory bandwidth also scales with core count ("for fair comparison"),
  but saturates as real shared memory systems do -- this saturation is
  what Figure 1 of the paper measures.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass(frozen=True)
class HardwareConfig:
    """Parameters of the simulated SISA platform (paper Table 2)."""

    clock_ghz: float = 2.0
    # l_M: DRAM access latency.
    dram_latency_ns: float = 50.0
    # l_I: latency of one bulk bitwise in-situ operation (RowClone copies
    # of the two operand rows + triple-row activation + result copy),
    # amortized over the q subarray-parallel rows of one step.
    insitu_op_latency_ns: float = 50.0
    # R: DRAM row size in bits (8 KB rows, following Ambit).
    row_size_bits: int = 8 * 1024 * 8
    # q: number of rows processed in parallel (subarray-level parallelism).
    parallel_rows: int = 16
    # W: memory word size in bits for sparse-array elements.
    word_bits: int = 32
    # b_M: per-vault memory bandwidth (GB/s), Tesseract-style.
    vault_bandwidth_gbs: float = 16.0
    # b_L: inter-core interconnect bandwidth (GB/s).
    interconnect_bandwidth_gbs: float = 120.0
    # Vault count: 16 cubes x 32 vaults.
    num_vaults: int = 512
    # Near-memory in-order core: cycles of ALU work per streamed element
    # and per random probe (cheap cores, but low frequency).
    pnm_cycles_per_element: float = 1.0
    # Latency of one near-memory random access (lower than host DRAM
    # latency because the access never crosses the off-chip link).
    pnm_random_access_ns: float = 15.0
    # How many independent in-flight SISA instructions amortize the
    # per-instruction DRAM setup latency.  The host issues set
    # instructions to vaults without blocking (Tesseract-style
    # non-blocking offload), so successive independent operations
    # overlap their fixed latencies; only 1/pipeline_depth of each
    # latency lands on the critical path.
    pipeline_depth: float = 4.0
    # SCU costs.
    scu_dispatch_cycles: float = 4.0
    sm_hit_cycles: float = 2.0
    smb_entries: int = 1024  # 32 KB cache / 32 B metadata entries

    def __post_init__(self) -> None:
        if self.clock_ghz <= 0:
            raise ConfigError("clock_ghz must be positive")
        if self.row_size_bits <= 0 or self.parallel_rows <= 0:
            raise ConfigError("row geometry must be positive")
        if self.num_vaults <= 0:
            raise ConfigError("num_vaults must be positive")

    # -- unit helpers ------------------------------------------------------

    def ns_to_cycles(self, ns: float) -> float:
        return ns * self.clock_ghz

    @property
    def dram_latency_cycles(self) -> float:
        return self.ns_to_cycles(self.dram_latency_ns)

    @property
    def effective_op_latency_cycles(self) -> float:
        """Per-instruction setup latency after pipelining (see
        ``pipeline_depth``)."""
        return self.dram_latency_cycles / max(1.0, self.pipeline_depth)

    @property
    def insitu_op_cycles(self) -> float:
        return self.ns_to_cycles(self.insitu_op_latency_ns)

    @property
    def pnm_random_access_cycles(self) -> float:
        return self.ns_to_cycles(self.pnm_random_access_ns)

    def bandwidth_bytes_per_cycle(self, gbs: float) -> float:
        """Convert GB/s to bytes per core cycle."""
        return gbs / self.clock_ghz

    @property
    def vault_bytes_per_cycle(self) -> float:
        return self.bandwidth_bytes_per_cycle(self.vault_bandwidth_gbs)

    @property
    def interconnect_bytes_per_cycle(self) -> float:
        return self.bandwidth_bytes_per_cycle(self.interconnect_bandwidth_gbs)

    @property
    def stream_bytes_per_cycle(self) -> float:
        """min(b_M, b_L): the paper's streaming bottleneck (Section 8.3)."""
        return min(self.vault_bytes_per_cycle, self.interconnect_bytes_per_cycle)


@dataclass(frozen=True)
class CpuConfig:
    """Parameters of the host CPU used for baselines and non-SISA work.

    Models the paper's OoO manycore baseline platform.  Following the
    paper's fairness rule ("for fair comparison, we also use bandwidth
    scalability in this configuration, i.e., we increase the memory
    bandwidth with the number of cores, matching it with that of
    SISA-PNM", Section 9.1), the *default* configuration scales
    bandwidth all the way to 32 threads at the per-vault rate.  The
    motivation experiment (Fig. 1) instead uses
    :func:`commodity_cpu_config`, a real-machine-like memory system
    whose bandwidth saturates at 8 cores.
    """

    clock_ghz: float = 2.0
    max_threads: int = 32
    # Per-element instruction costs (cycles) for common kernels.
    cycles_per_merge_element: float = 3.0  # branchy two-pointer merge
    cycles_per_scan_element: float = 1.0  # sequential scan / SIMD-friendly
    cycles_per_hash_probe: float = 14.0  # hash tables spill out of L1/L2
    # Dependent-chain latency of one hash/flag probe that the OoO window
    # cannot fully hide (hash -> bucket -> key chains into L3/DRAM).
    hash_probe_latency_cycles: float = 20.0
    # Per-set-operation startup latency on the host: without an SCU and
    # its metadata cache, every set operation begins with a dependent
    # pointer chase through the set object into uncached operand heads.
    set_op_latency_cycles: float = 40.0
    # A random-access probe step (pointer chase / binary-search level):
    # mix of L2/L3/DRAM hits.
    probe_step_cycles: float = 20.0
    dram_latency_cycles: float = 200.0
    # Per-core streaming bandwidth and the core count beyond which the
    # shared memory system stops scaling.
    per_core_bandwidth_gbs: float = 16.0
    bandwidth_saturation_threads: int = 32
    cache_line_bytes: int = 64

    def __post_init__(self) -> None:
        if self.max_threads <= 0:
            raise ConfigError("max_threads must be positive")
        if self.bandwidth_saturation_threads <= 0:
            raise ConfigError("bandwidth_saturation_threads must be positive")

    def effective_bandwidth_bytes_per_cycle(self, threads: int) -> float:
        """Per-thread streaming bandwidth under contention.

        Aggregate bandwidth grows linearly up to the saturation thread
        count and is flat beyond it; each thread gets an equal share.
        """
        threads = max(1, threads)
        aggregate = self.per_core_bandwidth_gbs * min(
            threads, self.bandwidth_saturation_threads
        )
        per_thread_gbs = aggregate / threads
        return per_thread_gbs / self.clock_ghz


def commodity_cpu_config() -> CpuConfig:
    """A real-machine-like memory system for the Fig. 1 motivation run:
    shared DRAM bandwidth stops scaling past 8 cores, so extra threads
    stall on memory instead of helping."""
    return CpuConfig(
        per_core_bandwidth_gbs=12.0,
        bandwidth_saturation_threads=8,
    )
