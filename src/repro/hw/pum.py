"""SISA-PUM timing: in-situ bulk bitwise DRAM computing (Ambit-style).

The paper models an in-situ operation's runtime as

    l_M + l_I * ceil(n / (q * R))

(Section 9.1, "SISA Implementation"): one DRAM access to initiate, then
one bulk-bitwise step per group of ``q`` parallel rows of ``R`` bits
until all ``n`` bits of the operand bitvectors are processed.  Note the
cost is independent of the sets' cardinalities -- only the universe
size ``n`` matters, which is why dense high-degree neighborhoods are
so profitable here.
"""

from __future__ import annotations

import math

from repro.hw.config import HardwareConfig
from repro.hw.cost import Cost


class PumBackend:
    """Timing model for bulk bitwise operations inside DRAM."""

    def __init__(self, config: HardwareConfig):
        self.config = config

    def _steps(self, universe_bits: int) -> int:
        per_step = self.config.parallel_rows * self.config.row_size_bits
        return max(1, math.ceil(universe_bits / per_step))

    def bulk_bitwise(self, universe_bits: int, *, ops: int = 1) -> Cost:
        """Cost of ``ops`` chained bulk bitwise operations (AND/OR/NOT)
        over bitvectors of ``universe_bits`` bits.

        Difference needs two ops (NOT then AND, Section 8.1); plain
        intersection and union need one.
        """
        steps = self._steps(universe_bits)
        return Cost(
            latency_cycles=self.config.effective_op_latency_cycles
            + ops * steps * self.config.insitu_op_cycles
        )

    def intersect(self, universe_bits: int) -> Cost:
        return self.bulk_bitwise(universe_bits, ops=1)

    def union(self, universe_bits: int) -> Cost:
        return self.bulk_bitwise(universe_bits, ops=1)

    def difference(self, universe_bits: int) -> Cost:
        return self.bulk_bitwise(universe_bits, ops=2)

    def cardinality_of_result(self, universe_bits: int) -> Cost:
        """Popcount of the result row(s): one extra streaming pass by a
        near-memory core over n bits."""
        bytes_streamed = universe_bits / 8
        return Cost(
            memory_bytes=bytes_streamed,
            latency_cycles=self.config.effective_op_latency_cycles,
        )

    def bit_write(self) -> Cost:
        """Set/clear a single bit (instructions 0x5 / 0x6): one DRAM access."""
        return Cost(latency_cycles=self.config.effective_op_latency_cycles)
