"""Cost records produced by the timing backends.

Every simulated operation yields a :class:`Cost` with three components:

* ``compute_cycles`` -- cycles of ALU/control work that scale down with
  more parallel lanes,
* ``memory_bytes`` -- bytes streamed through a bandwidth-limited path
  (converted to cycles by the engine using the effective per-lane
  bandwidth, which models contention),
* ``latency_cycles`` -- fixed, non-overlappable latency (DRAM accesses,
  in-situ operation setup, SCU dispatch).

Keeping bytes separate from cycles lets one engine reproduce both the
CPU's bandwidth-saturation behaviour (paper Fig. 1) and the PNM's
bandwidth proportionality (Section 8.4, "Harnessing Parallelism").
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Cost:
    compute_cycles: float = 0.0
    memory_bytes: float = 0.0
    latency_cycles: float = 0.0

    def __add__(self, other: "Cost") -> "Cost":
        if not isinstance(other, Cost):
            return NotImplemented
        return Cost(
            self.compute_cycles + other.compute_cycles,
            self.memory_bytes + other.memory_bytes,
            self.latency_cycles + other.latency_cycles,
        )

    def scaled(self, factor: float) -> "Cost":
        return Cost(
            self.compute_cycles * factor,
            self.memory_bytes * factor,
            self.latency_cycles * factor,
        )

    def cycles(self, bytes_per_cycle: float) -> float:
        """Total cycles given an effective streaming bandwidth."""
        memory_cycles = (
            self.memory_bytes / bytes_per_cycle if bytes_per_cycle > 0 else 0.0
        )
        return self.compute_cycles + self.latency_cycles + memory_cycles


ZERO_COST = Cost()
