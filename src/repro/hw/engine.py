"""The execution engine: simulated thread lanes and runtime accounting.

The paper evaluates parallel executions on up to 32 threads with
deterministic scheduling (Section 9.1, "Tackling Long Simulation
Runtimes").  We model a parallel run as a fixed number of *lanes*.
Work is divided into *tasks* (e.g. one per outer-loop vertex); each
task is placed on the least-loaded lane at its start -- a greedy,
deterministic schedule.  A lane accumulates the costs of all
operations executed while its task is active.

The simulated runtime of the whole region is the maximum lane time;
per-lane busy/stall statistics reproduce the paper's load-balance
analysis (Fig. 9a) and the stalled-cycle motivation plot (Fig. 1).
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.hw.cost import Cost


@dataclass
class LaneState:
    compute_cycles: float = 0.0
    memory_bytes: float = 0.0
    latency_cycles: float = 0.0
    tasks: int = 0

    def charge(self, cost: Cost) -> None:
        self.compute_cycles += cost.compute_cycles
        self.memory_bytes += cost.memory_bytes
        self.latency_cycles += cost.latency_cycles

    def time(self, bytes_per_cycle: float) -> float:
        memory = self.memory_bytes / bytes_per_cycle if bytes_per_cycle > 0 else 0.0
        return self.compute_cycles + self.latency_cycles + memory

    def memory_time(self, bytes_per_cycle: float) -> float:
        stream = self.memory_bytes / bytes_per_cycle if bytes_per_cycle > 0 else 0.0
        return stream + self.latency_cycles


@dataclass(frozen=True)
class EngineMark:
    """A point-in-time snapshot of the engine's accumulated state.

    Marks delimit *runs* on a long-lived engine (the session API's
    per-run accounting): :meth:`ExecutionEngine.report_since` computes
    the report of everything charged after the mark.  A mark taken on a
    fresh engine is all zeros, so ``report_since(mark)`` on a cold
    engine is bit-identical to :meth:`ExecutionEngine.report`.
    """

    compute: tuple[float, ...]
    memory: tuple[float, ...]
    latency: tuple[float, ...]
    tasks: tuple[int, ...]
    sequential_overhead: float


@dataclass
class EngineReport:
    """Summary of a simulated parallel region."""

    runtime_cycles: float
    lane_times: list[float]
    lane_memory_times: list[float]
    tasks: int

    @property
    def threads(self) -> int:
        return len(self.lane_times)

    @property
    def stall_fractions(self) -> list[float]:
        """Per-lane fraction of the region spent waiting: idle time at
        the barrier plus memory time, over the region runtime.  This is
        the quantity behind Fig. 9a and (aggregated) Fig. 1 right."""
        if self.runtime_cycles <= 0:
            return [0.0] * self.threads
        fractions = []
        for busy, mem in zip(self.lane_times, self.lane_memory_times):
            idle = self.runtime_cycles - busy
            fractions.append(min(1.0, (idle + mem) / self.runtime_cycles))
        return fractions

    @property
    def avg_stall_fraction(self) -> float:
        fracs = self.stall_fractions
        return sum(fracs) / len(fracs) if fracs else 0.0

    @property
    def work_cycles(self) -> float:
        """Total modeled *work* in the region: the sum of per-lane busy
        times plus the sequential overhead (``runtime`` minus the
        longest lane).  This is the quantity session pools charge to
        tenant ledgers — work consumed, not wall-parallel runtime."""
        if not self.lane_times:
            return self.runtime_cycles
        return sum(self.lane_times) + (
            self.runtime_cycles - max(self.lane_times)
        )


class ExecutionEngine:
    """Accumulates costs on lanes and computes simulated runtimes.

    ``bytes_per_cycle`` is the *effective per-lane* streaming bandwidth;
    callers derive it from their platform model (CPU contention model or
    PNM bandwidth proportionality).
    """

    def __init__(self, threads: int, bytes_per_cycle: float):
        if threads <= 0:
            raise ConfigError("threads must be positive")
        if bytes_per_cycle <= 0:
            raise ConfigError("bytes_per_cycle must be positive")
        self.threads = threads
        self.bytes_per_cycle = bytes_per_cycle
        self._lanes = [LaneState() for _ in range(threads)]
        self._current = 0
        self._sequential_overhead = 0.0
        # Cached per-lane times for greedy placement.  Only the current
        # lane accumulates cost between begin_task calls, so it is the
        # only entry that can be stale; refreshing just that one keeps
        # begin_task O(1) amortized with values identical to a full
        # recompute.
        self._lane_times = [0.0] * threads
        # Per-tenant attribution (plan executors / session pools): while
        # a tenant tag is set, every charge is mirrored into that
        # tenant's shadow lanes, so interleaved multi-plan execution can
        # still report who consumed which modeled cycles.  Off (None) on
        # the hot single-run path.
        self._tenants: dict[object, list[LaneState]] = {}
        self._tenant_seq: dict[object, float] = {}
        self._tenant_tag: object | None = None
        self._tenant_lanes: list[LaneState] | None = None

    # -- task scheduling ---------------------------------------------------

    def begin_task(self) -> int:
        """Start a new task on the least-loaded lane (greedy placement);
        returns the lane index."""
        times = self._lane_times
        current = self._current
        times[current] = self._lanes[current].time(self.bytes_per_cycle)
        self._current = current = times.index(min(times))
        self._lanes[current].tasks += 1
        if self._tenant_lanes is not None:
            self._tenant_lanes[current].tasks += 1
        return current

    @contextmanager
    def on_lane(self, lane: int):
        """Temporarily make ``lane`` the charging target.

        Used by the fused cross-task burst path: a constituent burst's
        ops must land on the lane its task was placed on at unit
        creation, even though other plans' tasks have moved the current
        lane since.  Both the outgoing and the pinned lane's cached
        times are refreshed, preserving the begin_task invariant that
        only the current lane's cached time can be stale.
        """
        bpc = self.bytes_per_cycle
        times = self._lane_times
        prev = self._current
        times[prev] = self._lanes[prev].time(bpc)
        self._current = lane
        try:
            yield lane
        finally:
            times[lane] = self._lanes[lane].time(bpc)
            self._current = prev

    def charge(self, cost: Cost) -> None:
        """Charge a cost to the current task's lane."""
        self._lanes[self._current].charge(cost)
        if self._tenant_lanes is not None:
            self._tenant_lanes[self._current].charge(cost)

    def charge_sequential(self, cost: Cost) -> None:
        """Charge a cost that cannot be parallelized (setup, reductions)."""
        cycles = cost.cycles(self.bytes_per_cycle)
        self._sequential_overhead += cycles
        if self._tenant_tag is not None:
            self._tenant_seq[self._tenant_tag] = (
                self._tenant_seq.get(self._tenant_tag, 0.0) + cycles
            )

    def charge_batch(
        self,
        compute: list[float],
        memory: list[float],
        latency: list[float],
    ) -> None:
        """Charge a sequence of per-op cost components to the current
        task's lane.

        Components are accumulated op by op, in order — the float
        additions are exactly the ones a sequence of :meth:`charge`
        calls would perform, so batched and sequential execution yield
        bit-identical lane times."""
        lane = self._lanes[self._current]
        acc = lane.compute_cycles
        for x in compute:
            acc += x
        lane.compute_cycles = acc
        acc = lane.memory_bytes
        for x in memory:
            acc += x
        lane.memory_bytes = acc
        acc = lane.latency_cycles
        for x in latency:
            acc += x
        lane.latency_cycles = acc
        if self._tenant_lanes is not None:
            shadow = self._tenant_lanes[self._current]
            acc = shadow.compute_cycles
            for x in compute:
                acc += x
            shadow.compute_cycles = acc
            acc = shadow.memory_bytes
            for x in memory:
                acc += x
            shadow.memory_bytes = acc
            acc = shadow.latency_cycles
            for x in latency:
                acc += x
            shadow.latency_cycles = acc

    # -- per-tenant attribution --------------------------------------------

    def set_tenant(self, tag: object | None) -> None:
        """Mirror subsequent charges into ``tag``'s shadow lanes (pass
        ``None`` to stop attributing)."""
        if tag is None:
            self._tenant_tag = None
            self._tenant_lanes = None
            return
        lanes = self._tenants.get(tag)
        if lanes is None:
            lanes = self._tenants[tag] = [
                LaneState() for _ in range(self.threads)
            ]
        self._tenant_tag = tag
        self._tenant_lanes = lanes

    def tenant_report(self, tag: object) -> EngineReport:
        """The engine report of one tenant's attributed charges (zeros
        for an unknown tenant)."""
        lanes = self._tenants.get(tag)
        if lanes is None:
            lanes = [LaneState() for _ in range(self.threads)]
        lane_times = [lane.time(self.bytes_per_cycle) for lane in lanes]
        lane_memory = [lane.memory_time(self.bytes_per_cycle) for lane in lanes]
        sequential = self._tenant_seq.get(tag, 0.0)
        runtime = (max(lane_times) if lane_times else 0.0) + sequential
        return EngineReport(
            runtime_cycles=runtime,
            lane_times=lane_times,
            lane_memory_times=lane_memory,
            tasks=sum(lane.tasks for lane in lanes),
        )

    def tenant_work_cycles(self, tag: object) -> float:
        """One tenant's attributed work (sum of shadow-lane times plus
        attributed sequential overhead) without building a report.
        Cheap enough for span instrumentation to delta per plan stage."""
        lanes = self._tenants.get(tag)
        bpc = self.bytes_per_cycle
        busy = sum(lane.time(bpc) for lane in lanes) if lanes else 0.0
        return busy + self._tenant_seq.get(tag, 0.0)

    def drop_tenant(self, tag: object) -> None:
        """Forget one tenant's attributed charges."""
        self._tenants.pop(tag, None)
        self._tenant_seq.pop(tag, None)
        if self._tenant_tag == tag:
            self._tenant_tag = None
            self._tenant_lanes = None

    # -- run marks -----------------------------------------------------------

    def mark(self) -> EngineMark:
        """Snapshot the accumulated lane state (start of a new run)."""
        lanes = self._lanes
        return EngineMark(
            compute=tuple(lane.compute_cycles for lane in lanes),
            memory=tuple(lane.memory_bytes for lane in lanes),
            latency=tuple(lane.latency_cycles for lane in lanes),
            tasks=tuple(lane.tasks for lane in lanes),
            sequential_overhead=self._sequential_overhead,
        )

    def report_since(self, mark: EngineMark) -> EngineReport:
        """Report of the region charged after ``mark``.

        Per-lane deltas are rebuilt into :class:`LaneState` records and
        timed exactly like :meth:`report` does, so a mark taken on a
        fresh engine yields a report bit-identical to the full one.
        """
        if len(mark.compute) != len(self._lanes):
            raise ConfigError("mark belongs to a different engine shape")
        deltas = [
            LaneState(
                compute_cycles=lane.compute_cycles - mark.compute[i],
                memory_bytes=lane.memory_bytes - mark.memory[i],
                latency_cycles=lane.latency_cycles - mark.latency[i],
                tasks=lane.tasks - mark.tasks[i],
            )
            for i, lane in enumerate(self._lanes)
        ]
        lane_times = [lane.time(self.bytes_per_cycle) for lane in deltas]
        lane_memory = [lane.memory_time(self.bytes_per_cycle) for lane in deltas]
        sequential = self._sequential_overhead - mark.sequential_overhead
        runtime = (max(lane_times) if lane_times else 0.0) + sequential
        return EngineReport(
            runtime_cycles=runtime,
            lane_times=lane_times,
            lane_memory_times=lane_memory,
            tasks=sum(lane.tasks for lane in deltas),
        )

    # -- reporting -----------------------------------------------------------

    @property
    def total_tasks(self) -> int:
        return sum(lane.tasks for lane in self._lanes)

    def report(self) -> EngineReport:
        lane_times = [lane.time(self.bytes_per_cycle) for lane in self._lanes]
        lane_memory = [lane.memory_time(self.bytes_per_cycle) for lane in self._lanes]
        runtime = (max(lane_times) if lane_times else 0.0) + self._sequential_overhead
        return EngineReport(
            runtime_cycles=runtime,
            lane_times=lane_times,
            lane_memory_times=lane_memory,
            tasks=self.total_tasks,
        )

    @property
    def runtime_cycles(self) -> float:
        return self.report().runtime_cycles

    def work_cycles(self) -> float:
        """Lifetime modeled work: sum of lane busy times plus the
        sequential overhead.  Monotone and O(threads) to read, so span
        instrumentation deltas it around plan stages."""
        bpc = self.bytes_per_cycle
        return (
            sum(lane.time(bpc) for lane in self._lanes)
            + self._sequential_overhead
        )
