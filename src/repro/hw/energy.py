"""First-order energy model for SISA executions.

The paper motivates in-situ PIM partly by energy ("for highest
performance and energy efficiency", Section 1; Ambit's bulk bitwise
operations are dramatically cheaper per bit than moving data over the
off-chip bus).  This module estimates the energy of a simulated run
from the engine's aggregate traffic and the SCU's instruction counts,
using per-event constants in the range reported for DRAM/PIM systems:

* off-chip data movement ~ 20 pJ/byte (I/O + DRAM access energy),
* near-memory (TSV) movement ~ 4 pJ/byte,
* one in-situ bulk bitwise step ~ 0.1 nJ (row activations),
* core compute ~ 20 pJ/cycle (host OoO) or 5 pJ/cycle (in-order PNM).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # avoid a runtime circular import (runtime -> hw -> energy)
    from repro.runtime.context import SisaContext


@dataclass(frozen=True)
class EnergyParameters:
    offchip_pj_per_byte: float = 20.0
    nearmem_pj_per_byte: float = 4.0
    insitu_nj_per_op: float = 0.1
    host_pj_per_cycle: float = 20.0
    pnm_pj_per_cycle: float = 5.0


@dataclass(frozen=True)
class EnergyReport:
    data_movement_nj: float
    compute_nj: float
    insitu_nj: float

    @property
    def total_nj(self) -> float:
        return self.data_movement_nj + self.compute_nj + self.insitu_nj


def estimate_energy(
    ctx: "SisaContext", params: EnergyParameters | None = None
) -> EnergyReport:
    """Estimate the energy of everything charged to ``ctx``'s engine."""
    params = params or EnergyParameters()
    lanes = ctx.engine._lanes
    total_bytes = sum(lane.memory_bytes for lane in lanes)
    total_compute = sum(lane.compute_cycles for lane in lanes)
    if ctx.mode == "sisa":
        movement = total_bytes * params.nearmem_pj_per_byte / 1e3
        compute = total_compute * params.pnm_pj_per_cycle / 1e3
    else:
        movement = total_bytes * params.offchip_pj_per_byte / 1e3
        compute = total_compute * params.host_pj_per_cycle / 1e3
    insitu = ctx.scu.stats.pum_ops * params.insitu_nj_per_op
    return EnergyReport(
        data_movement_nj=movement, compute_nj=compute, insitu_nj=insitu
    )
