"""Hardware timing models: PUM, PNM, host CPU, caches, execution engine."""

from repro.hw.cache import CacheStats, LruCache
from repro.hw.config import CpuConfig, HardwareConfig
from repro.hw.cost import Cost, ZERO_COST
from repro.hw.cpu import CpuBackend
from repro.hw.energy import EnergyParameters, EnergyReport, estimate_energy
from repro.hw.engine import EngineReport, ExecutionEngine
from repro.hw.pnm import PnmBackend
from repro.hw.pum import PumBackend

__all__ = [
    "CacheStats",
    "LruCache",
    "CpuConfig",
    "HardwareConfig",
    "Cost",
    "ZERO_COST",
    "CpuBackend",
    "EnergyParameters",
    "EnergyReport",
    "estimate_energy",
    "EngineReport",
    "ExecutionEngine",
    "PnmBackend",
    "PumBackend",
]
