"""A small LRU cache model: the SCU's Set Metadata Buffer (SMB).

The SCU caches set metadata (representation, size, address) in a 32 KB
scratchpad (paper Sections 3 and 8.4).  A hit costs a couple of cycles;
a miss is one additional memory access to the in-memory SM structure.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


class LruCache:
    """Fixed-capacity LRU set of keys with hit/miss accounting."""

    def __init__(self, capacity: int):
        self.capacity = max(0, int(capacity))
        self._entries: OrderedDict[int, None] = OrderedDict()
        self.stats = CacheStats()

    def access(self, key: int) -> bool:
        """Touch ``key``; returns True on hit, False on miss (and inserts)."""
        if self.capacity == 0:
            self.stats.misses += 1
            return False
        if key in self._entries:
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        self._entries[key] = None
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
        return False

    def invalidate(self, key: int) -> None:
        self._entries.pop(key, None)

    def __len__(self) -> int:
        return len(self._entries)
