"""Deterministic synthetic graph generators.

These generators provide the structural regimes the paper's evaluation
depends on (Section 9, Figure 7a):

* heavy-tailed degree distributions with dense clusters (biological /
  brain networks, where SISA-PUM shines),
* light-tailed graphs without large cliques (social / scientific
  networks, where SISA falls back to SISA-PNM),
* dense near-complete graphs (DIMACS instances, ant-colony interaction
  networks),
* Kronecker graphs for the scalability study (Section 9.2), following
  Leskovec et al.

All generators are deterministic given a seed.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphError
from repro.graphs.csr import CSRGraph, VERTEX_DTYPE


def _dedupe_edges(n: int, src: np.ndarray, dst: np.ndarray) -> np.ndarray:
    mask = src != dst
    src, dst = src[mask], dst[mask]
    lo = np.minimum(src, dst)
    hi = np.maximum(src, dst)
    keys = np.unique(lo * np.int64(n) + hi)
    return np.column_stack([keys // n, keys % n]).astype(VERTEX_DTYPE)


def gnp_random_graph(n: int, p: float, *, seed: int = 0) -> CSRGraph:
    """Erdos-Renyi G(n, p).  Dense sampling; use for small/moderate n."""
    if not 0.0 <= p <= 1.0:
        raise GraphError("p must be in [0, 1]")
    rng = np.random.default_rng(seed)
    if n < 2 or p == 0.0:
        return CSRGraph.empty(max(n, 0))
    iu, ju = np.triu_indices(n, k=1)
    mask = rng.random(iu.size) < p
    edges = np.column_stack([iu[mask], ju[mask]]).astype(VERTEX_DTYPE)
    return CSRGraph.from_edges(n, edges)


def power_law_weights(
    n: int,
    gamma: float,
    *,
    min_weight: float = 1.0,
    max_weight_fraction: float = 0.35,
) -> np.ndarray:
    """Expected-degree weights ``w_i ~ i^(-1/(gamma-1))`` (Chung-Lu style).

    Weights are capped at ``max_weight_fraction * n`` so that the top
    hubs stay below connection probability one — otherwise heavy tails
    (gamma near 2) degenerate into a complete core clique, which makes
    structurally different datasets produce identical mining workloads.
    """
    if gamma <= 1.0:
        raise GraphError("power-law exponent gamma must exceed 1")
    ranks = np.arange(1, n + 1, dtype=np.float64)
    weights = min_weight * (n / ranks) ** (1.0 / (gamma - 1.0))
    return np.minimum(weights, max_weight_fraction * n)


def chung_lu_graph(
    n: int,
    target_edges: int,
    *,
    gamma: float = 2.2,
    seed: int = 0,
    max_rounds: int = 12,
    max_weight_fraction: float = 0.35,
) -> CSRGraph:
    """Chung-Lu graph with a power-law expected degree sequence.

    Samples endpoint pairs proportionally to vertex weights until about
    ``target_edges`` distinct undirected edges exist.  Heavier tails
    (smaller gamma) concentrate edges on few hub vertices.
    """
    if n < 2 or target_edges <= 0:
        return CSRGraph.empty(max(n, 0))
    rng = np.random.default_rng(seed)
    weights = power_law_weights(n, gamma, max_weight_fraction=max_weight_fraction)
    probs = weights / weights.sum()
    collected = np.empty((0, 2), dtype=VERTEX_DTYPE)
    need = target_edges
    for _ in range(max_rounds):
        batch = int(need * 1.6) + 16
        src = rng.choice(n, size=batch, p=probs)
        dst = rng.choice(n, size=batch, p=probs)
        new = _dedupe_edges(n, src.astype(VERTEX_DTYPE), dst.astype(VERTEX_DTYPE))
        collected = _dedupe_edges(
            n,
            np.concatenate([collected[:, 0], new[:, 0]]),
            np.concatenate([collected[:, 1], new[:, 1]]),
        )
        if collected.shape[0] >= target_edges:
            break
        need = target_edges - collected.shape[0]
    if collected.shape[0] > target_edges:
        pick = rng.choice(collected.shape[0], size=target_edges, replace=False)
        collected = collected[np.sort(pick)]
    return CSRGraph.from_edges(n, collected)


def planted_clique_graph(
    n: int,
    target_edges: int,
    *,
    num_cliques: int = 8,
    clique_size: int = 12,
    gamma: float = 2.1,
    seed: int = 0,
    max_weight_fraction: float = 0.35,
) -> CSRGraph:
    """Heavy-tailed Chung-Lu background plus planted dense cliques.

    This is the stand-in for the paper's biological / genome graphs:
    Fig. 7a notes they have "very heavy tails ... many large
    neighborhoods and very dense large clusters".  Cliques are planted
    on the highest-weight (hub) vertices plus random fill, producing
    both large maximal cliques and heavy degree tails.
    """
    rng = np.random.default_rng(seed)
    clique_edges_each = clique_size * (clique_size - 1) // 2
    background_edges = max(target_edges - num_cliques * clique_edges_each, n)
    base = chung_lu_graph(
        n,
        background_edges,
        gamma=gamma,
        seed=int(rng.integers(1 << 30)),
        max_weight_fraction=max_weight_fraction,
    )
    extra: list[np.ndarray] = [base.edge_array()]
    hubs = np.arange(min(n, max(num_cliques, clique_size)))
    for __ in range(num_cliques):
        # Vary planted sizes so distinct datasets never share identical
        # dense-core workloads.
        size = int(rng.integers(max(4, clique_size - 4), clique_size + 5))
        anchor = rng.choice(hubs, size=min(3, hubs.size), replace=False)
        rest = rng.choice(n, size=min(n, size), replace=False)
        members = np.unique(np.concatenate([anchor, rest]))[:size]
        iu, ju = np.triu_indices(members.size, k=1)
        extra.append(
            np.column_stack([members[iu], members[ju]]).astype(VERTEX_DTYPE)
        )
    edges = np.concatenate(extra)
    return CSRGraph.from_edges(n, edges)


def bipartite_core_graph(
    n: int,
    target_edges: int,
    *,
    core_fraction: float = 0.25,
    seed: int = 0,
) -> CSRGraph:
    """A dense quasi-bipartite core with a sparse periphery.

    Stand-in for the paper's economic networks (input-output matrices):
    a modest set of "sector" vertices densely interconnected with the
    rest, giving moderate tails and dense rectangular blocks.
    """
    rng = np.random.default_rng(seed)
    k = max(2, int(n * core_fraction))
    core = np.arange(k)
    periphery = np.arange(k, n)
    if periphery.size == 0:
        return gnp_random_graph(n, min(1.0, 2 * target_edges / (n * (n - 1))), seed=seed)
    src = rng.choice(core, size=target_edges)
    dst = rng.choice(periphery, size=target_edges)
    dense_pairs = _dedupe_edges(n, src.astype(VERTEX_DTYPE), dst.astype(VERTEX_DTYPE))
    # Add some intra-core density so cliques exist (capped well below a
    # complete core, which would collapse distinct datasets into the
    # same effective mining workload).
    iu, ju = np.triu_indices(k, k=1)
    keep = rng.random(iu.size) < min(0.35, 2.0 * target_edges / max(1, k * k))
    core_pairs = np.column_stack([core[iu[keep]], core[ju[keep]]]).astype(VERTEX_DTYPE)
    edges = np.concatenate([dense_pairs, core_pairs])
    if edges.shape[0] > target_edges:
        pick = rng.choice(edges.shape[0], size=target_edges, replace=False)
        edges = edges[np.sort(pick)]
    return CSRGraph.from_edges(n, edges)


def near_complete_graph(n: int, *, missing_fraction: float = 0.1, seed: int = 0) -> CSRGraph:
    """Almost-complete graph: the ant-colony interaction stand-in."""
    return gnp_random_graph(n, 1.0 - missing_fraction, seed=seed)


def kronecker_graph(
    scale: int,
    edge_factor: int,
    *,
    initiator: tuple[tuple[float, float], tuple[float, float]] = (
        (0.57, 0.19),
        (0.19, 0.05),
    ),
    seed: int = 0,
) -> CSRGraph:
    """Stochastic Kronecker graph (Graph500-style RMAT sampling).

    ``n = 2**scale`` vertices and about ``edge_factor * n`` undirected
    edges (before dedup).  Used for the strong/weak scaling study, as in
    the paper ("we use Kronecker graphs and vary the number of
    edges/vertex").
    """
    if scale < 1:
        raise GraphError("scale must be >= 1")
    rng = np.random.default_rng(seed)
    n = 1 << scale
    m = edge_factor * n
    (a, b), (c, d) = initiator
    total = a + b + c + d
    pa, pb, pc = a / total, b / total, c / total
    src = np.zeros(m, dtype=VERTEX_DTYPE)
    dst = np.zeros(m, dtype=VERTEX_DTYPE)
    for __ in range(scale):
        r = rng.random(m)
        right = (r >= pa + pc) & (r < pa + pc + pb) | (r >= pa + pb + pc)
        down = (r >= pa) & (r < pa + pc) | (r >= pa + pb + pc)
        src = (src << 1) | down.astype(VERTEX_DTYPE)
        dst = (dst << 1) | right.astype(VERTEX_DTYPE)
    # Permute vertex ids to remove degree-locality artifacts.
    perm = rng.permutation(n).astype(VERTEX_DTYPE)
    return CSRGraph.from_edges(n, np.column_stack([perm[src], perm[dst]]))


def star_graph(n: int) -> CSRGraph:
    """A star: max degree n-1 but degeneracy 1 (used in theory tests)."""
    if n < 1:
        raise GraphError("star graph needs at least one vertex")
    edges = np.column_stack(
        [np.zeros(n - 1, dtype=VERTEX_DTYPE), np.arange(1, n, dtype=VERTEX_DTYPE)]
    )
    return CSRGraph.from_edges(n, edges)


def complete_graph(n: int) -> CSRGraph:
    iu, ju = np.triu_indices(n, k=1)
    return CSRGraph.from_edges(n, np.column_stack([iu, ju]).astype(VERTEX_DTYPE))


def cycle_graph(n: int) -> CSRGraph:
    if n < 3:
        raise GraphError("cycle graph needs at least three vertices")
    idx = np.arange(n, dtype=VERTEX_DTYPE)
    return CSRGraph.from_edges(n, np.column_stack([idx, (idx + 1) % n]))


def path_graph(n: int) -> CSRGraph:
    if n < 1:
        raise GraphError("path graph needs at least one vertex")
    idx = np.arange(n - 1, dtype=VERTEX_DTYPE)
    return CSRGraph.from_edges(n, np.column_stack([idx, idx + 1]))
