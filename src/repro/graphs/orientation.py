"""Degeneracy orderings: exact peeling and the paper's streaming approximation.

The degeneracy ``c`` of a graph is the smallest ``x`` such that every
subgraph has a vertex of degree at most ``x``.  The *degeneracy order*
lists vertices so that each vertex has at most ``c`` neighbors later in
the order; orienting edges along the order yields a DAG with out-degree
at most ``c`` (paper Section 7.1).

Two algorithms are provided:

* :func:`degeneracy_order` — the exact Matula–Beck bucket peel,
  ``O(n + m)``.
* :func:`approx_degeneracy_order` — the paper's Algorithm 6 (due to
  Farach-Colton and Tsai's streaming scheme): repeatedly strip all
  vertices whose degree is at most ``(1 + eps)`` times the current
  average degree.  ``O(log n)`` rounds, approximation ratio ``2 + eps``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import GraphError
from repro.graphs.csr import CSRGraph, VERTEX_DTYPE


@dataclass(frozen=True)
class DegeneracyResult:
    """Order (vertex at each position), per-vertex rank, and the peel value.

    ``degeneracy`` is the exact degeneracy for :func:`degeneracy_order`
    and an upper bound (out-degree of the induced orientation) for the
    approximate variant.
    """

    order: np.ndarray
    rank: np.ndarray
    degeneracy: int


def induced_out_degrees(graph: CSRGraph, rank: np.ndarray) -> np.ndarray:
    """Per-vertex out-degree of the orientation induced by ``rank``.

    ``rank`` is any array of distinct keys (a maintained rank need not
    be a dense permutation — rank repair appends past ``n``): the arc
    of edge ``{u, v}`` leaves the lower-ranked endpoint.  One
    vectorized pass over the adjacency arrays, ``O(m)``.
    """
    n = graph.num_vertices
    if graph.targets.size == 0:
        return np.zeros(n, dtype=np.int64)
    src = np.repeat(np.arange(n, dtype=np.int64), graph.degrees)
    outgoing = rank[graph.targets] > rank[src]
    return np.bincount(src[outgoing], minlength=n)


def result_from_order(graph: CSRGraph, order: np.ndarray) -> DegeneracyResult:
    """Package an order as a :class:`DegeneracyResult` (rank array plus
    the induced-orientation out-degree bound)."""
    n = graph.num_vertices
    rank = np.empty(n, dtype=VERTEX_DTYPE)
    rank[order] = np.arange(n, dtype=VERTEX_DTYPE)
    out = induced_out_degrees(graph, rank)
    max_out = int(out.max()) if out.size else 0
    return DegeneracyResult(order=order, rank=rank, degeneracy=max_out)


# Backwards-compatible internal alias.
_result_from_order = result_from_order


def degeneracy_order(graph: CSRGraph) -> DegeneracyResult:
    """Exact degeneracy order by repeatedly removing a minimum-degree vertex."""
    n = graph.num_vertices
    if n == 0:
        empty = np.empty(0, dtype=VERTEX_DTYPE)
        return DegeneracyResult(order=empty, rank=empty.copy(), degeneracy=0)
    degree = graph.degrees.copy()
    max_deg = int(degree.max()) if n else 0
    # Bucket queue keyed by current degree.
    buckets: list[list[int]] = [[] for _ in range(max_deg + 1)]
    for v in range(n):
        buckets[degree[v]].append(v)
    removed = np.zeros(n, dtype=bool)
    order = np.empty(n, dtype=VERTEX_DTYPE)
    degeneracy = 0
    cursor = 0
    for i in range(n):
        # Advance to the first bucket holding a live, up-to-date entry.
        # Stale entries (vertex removed, or re-bucketed at a lower degree)
        # are lazily discarded here.
        while True:
            bucket = buckets[cursor]
            while bucket and (
                removed[bucket[-1]] or degree[bucket[-1]] != cursor
            ):
                bucket.pop()
            if bucket:
                break
            cursor += 1
        v = bucket.pop()
        removed[v] = True
        order[i] = v
        degeneracy = max(degeneracy, cursor)
        for w in graph.neighbors(v):
            if not removed[w]:
                degree[w] -= 1
                buckets[degree[w]].append(int(w))
        # A neighbor's degree drop can open a bucket one below the
        # current one at most.
        if cursor > 0:
            cursor -= 1
    rank = np.empty(n, dtype=VERTEX_DTYPE)
    rank[order] = np.arange(n, dtype=VERTEX_DTYPE)
    return DegeneracyResult(order=order, rank=rank, degeneracy=degeneracy)


def approx_degeneracy_order(
    graph: CSRGraph, *, eps: float = 0.5
) -> DegeneracyResult:
    """Algorithm 6: (2 + eps)-approximate degeneracy order in O(log n) rounds.

    Repeatedly collect ``X = {v : |N(v)| <= (1 + eps) * avg_degree}``,
    assign all of ``X`` the next rank block, and delete ``X``.  The set
    difference ``N(v) \\= X`` on line 7 of the listing is the operation
    SISA accelerates; here we run the numpy equivalent.
    """
    if eps <= 0:
        raise GraphError("eps must be positive")
    n = graph.num_vertices
    if n == 0:
        empty = np.empty(0, dtype=VERTEX_DTYPE)
        return DegeneracyResult(order=empty, rank=empty.copy(), degeneracy=0)
    alive = np.ones(n, dtype=bool)
    degree = graph.degrees.astype(np.float64).copy()
    order_blocks: list[np.ndarray] = []
    remaining = n
    while remaining:
        live = np.flatnonzero(alive)
        avg = degree[live].sum() / remaining
        threshold = (1.0 + eps) * avg
        stripped = live[degree[live] <= threshold]
        if stripped.size == 0:
            # Cannot happen for eps > 0 (at least the min-degree vertex
            # is below (1 + eps) * avg), but guard against float issues.
            stripped = live[degree[live] == degree[live].min()]
        order_blocks.append(np.sort(stripped).astype(VERTEX_DTYPE))
        alive[stripped] = False
        remaining -= stripped.size
        stripped_set = np.zeros(n, dtype=bool)
        stripped_set[stripped] = True
        for v in np.flatnonzero(alive):
            nbrs = graph.neighbors(v)
            degree[v] -= int(np.count_nonzero(stripped_set[nbrs]))
    order = np.concatenate(order_blocks)
    return _result_from_order(graph, order)


def core_decomposition(graph: CSRGraph) -> np.ndarray:
    """Per-vertex core numbers (largest k such that v is in the k-core)."""
    n = graph.num_vertices
    core = np.zeros(n, dtype=VERTEX_DTYPE)
    result = degeneracy_order(graph)
    degree = graph.degrees.copy()
    removed = np.zeros(n, dtype=bool)
    current = 0
    for v in result.order:
        current = max(current, int(degree[v]))
        core[v] = current
        removed[v] = True
        for w in graph.neighbors(v):
            if not removed[w] and degree[w] > degree[v]:
                degree[w] -= 1
    return core


def k_core(graph: CSRGraph, k: int) -> np.ndarray:
    """Vertices of the k-core (max subgraph with all degrees >= k)."""
    return np.flatnonzero(core_decomposition(graph) >= k)
