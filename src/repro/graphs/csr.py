"""Compressed-sparse-row undirected graphs.

The CSR layout follows the paper's assumptions (Section 6.1): there are
``n`` neighborhoods, each neighborhood is static and sorted, and the total
size of all neighborhoods is ``O(m)``.  Vertices are integers ``0..n-1``
(the paper numbers them ``1..n``; we use zero-based ids throughout).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.errors import GraphError

VERTEX_DTYPE = np.int64
OFFSET_DTYPE = np.int64


def _as_edge_array(edges: Iterable[tuple[int, int]] | np.ndarray) -> np.ndarray:
    arr = np.asarray(list(edges) if not isinstance(edges, np.ndarray) else edges)
    if arr.size == 0:
        return arr.reshape(0, 2).astype(VERTEX_DTYPE)
    if arr.ndim != 2 or arr.shape[1] != 2:
        raise GraphError(f"edge array must have shape (m, 2), got {arr.shape}")
    return arr.astype(VERTEX_DTYPE, copy=False)


class CSRGraph:
    """An immutable undirected graph in CSR form with sorted neighborhoods.

    Parameters
    ----------
    offsets:
        Array of length ``n + 1``; neighborhood of vertex ``v`` occupies
        ``targets[offsets[v]:offsets[v + 1]]``.
    targets:
        Concatenated, per-vertex-sorted adjacency array of length ``2m``.
    """

    __slots__ = ("offsets", "targets", "_degrees")

    def __init__(self, offsets: np.ndarray, targets: np.ndarray):
        self.offsets = np.asarray(offsets, dtype=OFFSET_DTYPE)
        self.targets = np.asarray(targets, dtype=VERTEX_DTYPE)
        if self.offsets.ndim != 1 or self.offsets.size == 0:
            raise GraphError("offsets must be a 1-D array of length n + 1")
        if self.offsets[0] != 0 or self.offsets[-1] != self.targets.size:
            raise GraphError("offsets must start at 0 and end at len(targets)")
        if np.any(np.diff(self.offsets) < 0):
            raise GraphError("offsets must be non-decreasing")
        if self.targets.size and (
            self.targets.min() < 0 or self.targets.max() >= self.num_vertices
        ):
            raise GraphError("target vertex id out of range")
        self._degrees = np.diff(self.offsets)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_edges(
        cls,
        num_vertices: int,
        edges: Iterable[tuple[int, int]] | np.ndarray,
        *,
        allow_self_loops: bool = False,
    ) -> "CSRGraph":
        """Build from an undirected edge list; duplicates are removed.

        Each input pair ``(u, v)`` contributes both directions.  Self
        loops are dropped unless ``allow_self_loops`` is set (the paper's
        algorithms assume simple graphs).
        """
        if num_vertices < 0:
            raise GraphError("num_vertices must be non-negative")
        arr = _as_edge_array(edges)
        if arr.size and (arr.min() < 0 or arr.max() >= num_vertices):
            raise GraphError("edge endpoint out of range")
        if not allow_self_loops and arr.size:
            arr = arr[arr[:, 0] != arr[:, 1]]
        if arr.size == 0:
            offsets = np.zeros(num_vertices + 1, dtype=OFFSET_DTYPE)
            return cls(offsets, np.empty(0, dtype=VERTEX_DTYPE))
        # Canonicalize and dedupe undirected edges.
        lo = np.minimum(arr[:, 0], arr[:, 1])
        hi = np.maximum(arr[:, 0], arr[:, 1])
        keys = lo * num_vertices + hi
        __, unique_idx = np.unique(keys, return_index=True)
        lo, hi = lo[unique_idx], hi[unique_idx]
        src = np.concatenate([lo, hi])
        dst = np.concatenate([hi, lo])
        order = np.lexsort((dst, src))
        src, dst = src[order], dst[order]
        offsets = np.zeros(num_vertices + 1, dtype=OFFSET_DTYPE)
        np.add.at(offsets, src + 1, 1)
        np.cumsum(offsets, out=offsets)
        return cls(offsets, dst)

    @classmethod
    def empty(cls, num_vertices: int) -> "CSRGraph":
        return cls.from_edges(num_vertices, np.empty((0, 2), dtype=VERTEX_DTYPE))

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------

    @property
    def num_vertices(self) -> int:
        return self.offsets.size - 1

    @property
    def num_edges(self) -> int:
        """Number of undirected edges (each stored twice in CSR)."""
        return self.targets.size // 2

    @property
    def degrees(self) -> np.ndarray:
        return self._degrees

    def degree(self, v: int) -> int:
        return int(self._degrees[v])

    @property
    def max_degree(self) -> int:
        return int(self._degrees.max()) if self.num_vertices else 0

    def neighbors(self, v: int) -> np.ndarray:
        """Sorted neighborhood ``N(v)`` as a read-only view."""
        if not 0 <= v < self.num_vertices:
            raise GraphError(f"vertex {v} out of range")
        return self.targets[self.offsets[v] : self.offsets[v + 1]]

    def has_edge(self, u: int, v: int) -> bool:
        """Binary-search edge probe (the non-set baselines' primitive)."""
        nbrs = self.neighbors(u)
        i = np.searchsorted(nbrs, v)
        return bool(i < nbrs.size and nbrs[i] == v)

    def vertices(self) -> range:
        return range(self.num_vertices)

    def edges(self) -> Iterator[tuple[int, int]]:
        """Yield each undirected edge once, as ``(u, v)`` with ``u < v``."""
        for u in range(self.num_vertices):
            for v in self.neighbors(u):
                if u < v:
                    yield u, int(v)

    def edge_array(self) -> np.ndarray:
        """All undirected edges once, shape ``(m, 2)``, ``u < v`` rows."""
        if self.targets.size == 0:
            return np.empty((0, 2), dtype=VERTEX_DTYPE)
        src = np.repeat(
            np.arange(self.num_vertices, dtype=VERTEX_DTYPE), self._degrees
        )
        mask = src < self.targets
        return np.column_stack([src[mask], self.targets[mask]])

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------

    def subgraph(self, keep: Sequence[int] | np.ndarray) -> "CSRGraph":
        """Induced subgraph ``G[keep]`` with vertices relabeled ``0..k-1``."""
        keep = np.unique(np.asarray(keep, dtype=VERTEX_DTYPE))
        if keep.size and (keep.min() < 0 or keep.max() >= self.num_vertices):
            raise GraphError("subgraph vertex out of range")
        relabel = -np.ones(self.num_vertices, dtype=VERTEX_DTYPE)
        relabel[keep] = np.arange(keep.size, dtype=VERTEX_DTYPE)
        edges = self.edge_array()
        if edges.size:
            mask = (relabel[edges[:, 0]] >= 0) & (relabel[edges[:, 1]] >= 0)
            edges = relabel[edges[mask]]
        return CSRGraph.from_edges(keep.size, edges)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CSRGraph):
            return NotImplemented
        return np.array_equal(self.offsets, other.offsets) and np.array_equal(
            self.targets, other.targets
        )

    def __hash__(self) -> int:  # pragma: no cover - identity hash is enough
        return id(self)

    def __repr__(self) -> str:
        return f"CSRGraph(n={self.num_vertices}, m={self.num_edges})"
