"""Structural graph properties used by the evaluation.

Figure 7a of the paper analyzes degree distributions to explain where
SISA-PUM helps (heavy tails -> many dense-bitvector neighborhoods).
This module computes the statistics that the figure and the surrounding
discussion rely on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graphs.csr import CSRGraph
from repro.graphs.orientation import degeneracy_order


@dataclass(frozen=True)
class DegreeStats:
    """Summary of a graph's degree distribution."""

    num_vertices: int
    num_edges: int
    max_degree: int
    avg_degree: float
    median_degree: float
    # Fraction of n that the max degree reaches -- the quantity Fig. 7a
    # annotates ("max deg = 7k (50% of n)").
    max_degree_fraction: float
    # Fraction of vertices with degree >= 1% of n: a tail-weight measure.
    heavy_fraction: float
    # Gini coefficient of the degree distribution (0 = uniform).
    gini: float


def degree_stats(graph: CSRGraph) -> DegreeStats:
    n = graph.num_vertices
    deg = graph.degrees.astype(np.float64)
    if n == 0:
        return DegreeStats(0, 0, 0, 0.0, 0.0, 0.0, 0.0, 0.0)
    sorted_deg = np.sort(deg)
    total = sorted_deg.sum()
    if total > 0:
        lorenz = np.concatenate([[0.0], np.cumsum(sorted_deg) / total])
        gini = 1.0 - 2.0 * np.trapezoid(lorenz, dx=1.0 / n)
    else:
        gini = 0.0
    heavy_threshold = max(1.0, 0.01 * n)
    return DegreeStats(
        num_vertices=n,
        num_edges=graph.num_edges,
        max_degree=graph.max_degree,
        avg_degree=float(deg.mean()),
        median_degree=float(np.median(deg)),
        max_degree_fraction=graph.max_degree / n if n else 0.0,
        heavy_fraction=float(np.count_nonzero(deg >= heavy_threshold)) / n,
        gini=float(gini),
    )


def degree_histogram(graph: CSRGraph, *, log_bins: int = 24) -> tuple[np.ndarray, np.ndarray]:
    """Log-spaced (degree, count) histogram, the data behind Fig. 7a."""
    deg = graph.degrees
    deg = deg[deg > 0]
    if deg.size == 0:
        return np.array([1.0]), np.array([0])
    edges = np.unique(
        np.geomspace(1, max(2, deg.max() + 1), num=log_bins).astype(np.int64)
    )
    counts, __ = np.histogram(deg, bins=np.append(edges, edges[-1] + 1))
    return edges.astype(np.float64), counts


def degeneracy(graph: CSRGraph) -> int:
    """Exact degeneracy ``c`` (Table 2 / Section 7.1)."""
    return degeneracy_order(graph).degeneracy


def is_heavy_tailed(graph: CSRGraph, *, fraction_threshold: float = 0.05) -> bool:
    """The paper's Fig. 7a distinction: does the max degree reach a
    substantial fraction of n?  Genome graphs reach 18-50%; social and
    scientific graphs stay near or below 1%.
    """
    stats = degree_stats(graph)
    return stats.max_degree_fraction >= fraction_threshold


def triangle_count_reference(graph: CSRGraph) -> int:
    """Simple reference triangle count (used to validate algorithms)."""
    count = 0
    for u in range(graph.num_vertices):
        nu = graph.neighbors(u)
        nu = nu[nu > u]
        for v in nu:
            nv = graph.neighbors(int(v))
            nv = nv[nv > v]
            count += int(np.intersect1d(nu, nv, assume_unique=True).size)
    return count
