"""Graph substrate: CSR graphs, orientations, generators, properties, I/O."""

from repro.graphs.csr import CSRGraph
from repro.graphs.digraph import DiGraph, orient_by_order
from repro.graphs.labels import Labeling
from repro.graphs.orientation import (
    DegeneracyResult,
    approx_degeneracy_order,
    core_decomposition,
    degeneracy_order,
    k_core,
)
from repro.graphs.properties import (
    DegreeStats,
    degree_histogram,
    degree_stats,
    degeneracy,
    is_heavy_tailed,
)
from repro.graphs.streams import (
    EdgeBatch,
    EdgeStream,
    canonical_edges,
    churn_stream,
    insert_only_stream,
    rmat_churn_stream,
    sliding_window_stream,
)

__all__ = [
    "EdgeBatch",
    "EdgeStream",
    "canonical_edges",
    "churn_stream",
    "insert_only_stream",
    "rmat_churn_stream",
    "sliding_window_stream",
    "CSRGraph",
    "DiGraph",
    "orient_by_order",
    "Labeling",
    "DegeneracyResult",
    "approx_degeneracy_order",
    "core_decomposition",
    "degeneracy_order",
    "k_core",
    "DegreeStats",
    "degree_histogram",
    "degree_stats",
    "degeneracy",
    "is_heavy_tailed",
]
