"""Edge-stream workloads for the streaming dynamic-graph subsystem.

The paper's graphs are static; its ISA is not — element-update
instructions (Table 5 opcodes 0x5/0x6 and the SA forms) make sets
mutable.  This module generates the evolving-graph traffic that
exercises them: a stream is an initial edge list plus a sequence of
:class:`EdgeBatch` updates (batched insertions/deletions), in the three
canonical regimes of the streaming-graph literature:

* **insert-only** — the graph only grows (citation/collaboration
  networks),
* **sliding-window** — only the most recent ``window`` edges are live
  (interaction/message graphs),
* **churn** — edges are replaced at a fixed rate, keeping ``m`` roughly
  constant (social/protein networks under heavy update rates).

All streams are deterministic given a seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import GraphError
from repro.graphs.csr import CSRGraph, VERTEX_DTYPE
from repro.graphs.generators import kronecker_graph


@dataclass(frozen=True)
class EdgeBatch:
    """One streamed update batch: deletions are applied before
    insertions (the convention the whole subsystem follows)."""

    insertions: np.ndarray  # shape (k, 2), canonical u < v rows
    deletions: np.ndarray  # shape (j, 2), canonical u < v rows

    @property
    def size(self) -> int:
        return int(self.insertions.shape[0] + self.deletions.shape[0])


@dataclass(frozen=True)
class EdgeStream:
    """An initial graph state plus its update batches."""

    num_vertices: int
    initial_edges: np.ndarray
    batches: list[EdgeBatch] = field(default_factory=list)

    def initial_graph(self) -> CSRGraph:
        return CSRGraph.from_edges(self.num_vertices, self.initial_edges)

    def final_edges(self) -> np.ndarray:
        """Edge list after all batches (for rebuild-equivalence tests)."""
        live = {_key(int(u), int(v), self.num_vertices) for u, v in self.initial_edges}
        n = self.num_vertices
        for batch in self.batches:
            for u, v in batch.deletions:
                live.discard(_key(int(u), int(v), n))
            for u, v in batch.insertions:
                live.add(_key(int(u), int(v), n))
        if not live:
            return np.empty((0, 2), dtype=VERTEX_DTYPE)
        keys = np.asarray(sorted(live), dtype=np.int64)
        return np.column_stack([keys // n, keys % n]).astype(VERTEX_DTYPE)


def _key(u: int, v: int, n: int) -> int:
    lo, hi = (u, v) if u < v else (v, u)
    return lo * n + hi


def canonical_edges(edges: np.ndarray, num_vertices: int) -> np.ndarray:
    """Canonicalize an edge array: drop self loops, order endpoints
    ``u < v`` and dedupe, preserving first-occurrence order."""
    arr = np.asarray(edges, dtype=VERTEX_DTYPE).reshape(-1, 2)
    if arr.size == 0:
        return arr
    if arr.min() < 0 or arr.max() >= num_vertices:
        raise GraphError("stream edge endpoint out of range")
    arr = arr[arr[:, 0] != arr[:, 1]]
    lo = np.minimum(arr[:, 0], arr[:, 1])
    hi = np.maximum(arr[:, 0], arr[:, 1])
    keys = lo * np.int64(num_vertices) + hi
    __, first = np.unique(keys, return_index=True)
    first.sort()
    return np.column_stack([lo[first], hi[first]])


def _shuffled_edges(graph: CSRGraph, seed: int) -> np.ndarray:
    """The graph's edges in a deterministic random arrival order."""
    edges = graph.edge_array()
    rng = np.random.default_rng(seed)
    return edges[rng.permutation(edges.shape[0])]


def insert_only_stream(
    graph: CSRGraph,
    *,
    batch_size: int,
    initial_fraction: float = 0.5,
    seed: int = 0,
) -> EdgeStream:
    """Grow ``graph`` from an initial prefix to its full edge set."""
    if not 0.0 <= initial_fraction <= 1.0:
        raise GraphError("initial_fraction must be in [0, 1]")
    if batch_size <= 0:
        raise GraphError("batch_size must be positive")
    edges = _shuffled_edges(graph, seed)
    m = edges.shape[0]
    start = int(round(initial_fraction * m))
    none = np.empty((0, 2), dtype=VERTEX_DTYPE)
    batches = [
        EdgeBatch(insertions=edges[i : i + batch_size], deletions=none)
        for i in range(start, m, batch_size)
    ]
    return EdgeStream(graph.num_vertices, edges[:start], batches)


def sliding_window_stream(
    graph: CSRGraph,
    *,
    window: int,
    batch_size: int,
    seed: int = 0,
) -> EdgeStream:
    """Keep only the most recent ``window`` edges live: each batch
    inserts the next ``batch_size`` arrivals and deletes the oldest
    edges that fall out of the window."""
    if window <= 0 or batch_size <= 0:
        raise GraphError("window and batch_size must be positive")
    if batch_size > window:
        # A batch larger than the window would evict edges it inserted
        # itself; deletions are applied before insertions, so those
        # edges would stay live and break the window invariant.
        raise GraphError("batch_size must not exceed window")
    edges = _shuffled_edges(graph, seed)
    m = edges.shape[0]
    window = min(window, m)
    batches = []
    live_from = 0
    for i in range(window, m, batch_size):
        incoming = edges[i : i + batch_size]
        new_from = max(0, i + incoming.shape[0] - window)
        outgoing = edges[live_from:new_from]
        live_from = new_from
        batches.append(EdgeBatch(insertions=incoming, deletions=outgoing))
    return EdgeStream(graph.num_vertices, edges[:window], batches)


def churn_stream(
    graph: CSRGraph,
    *,
    churn: float = 0.01,
    num_batches: int = 10,
    seed: int = 0,
) -> EdgeStream:
    """Replace a ``churn`` fraction of the live edges every batch.

    Each batch deletes ``round(churn * m)`` random live edges and
    inserts the same number of random currently-absent pairs, keeping
    the edge count constant — the 1% regime of the acceptance floor.
    """
    if not 0.0 < churn <= 1.0:
        raise GraphError("churn must be in (0, 1]")
    n = graph.num_vertices
    if n < 2:
        raise GraphError("churn stream needs at least two vertices")
    rng = np.random.default_rng(seed)
    initial = graph.edge_array()
    live = {_key(int(u), int(v), n) for u, v in initial}
    k = max(1, int(round(churn * len(live))))
    batches = []
    for _ in range(num_batches):
        live_keys = np.asarray(sorted(live), dtype=np.int64)
        drop = live_keys[rng.choice(live_keys.size, size=min(k, live_keys.size), replace=False)]
        inserts: list[int] = []
        insert_set: set[int] = set()
        while len(inserts) < drop.size:
            u = int(rng.integers(0, n))
            v = int(rng.integers(0, n))
            if u == v:
                continue
            key = _key(u, v, n)
            if key in live or key in insert_set:
                continue
            inserts.append(key)
            insert_set.add(key)
        for key in drop:
            live.discard(int(key))
        live.update(inserts)
        ins_keys = np.asarray(inserts, dtype=np.int64)
        batches.append(
            EdgeBatch(
                insertions=np.column_stack(
                    [ins_keys // n, ins_keys % n]
                ).astype(VERTEX_DTYPE),
                deletions=np.column_stack([drop // n, drop % n]).astype(
                    VERTEX_DTYPE
                ),
            )
        )
    return EdgeStream(n, initial, batches)


def rmat_churn_stream(
    scale: int,
    edge_factor: int,
    *,
    churn: float = 0.01,
    num_batches: int = 10,
    seed: int = 0,
) -> EdgeStream:
    """Churn workload over an RMAT (Kronecker) graph — the benchmark
    configuration of ``benchmarks/bench_streaming.py``."""
    graph = kronecker_graph(scale, edge_factor, seed=seed)
    return churn_stream(graph, churn=churn, num_batches=num_batches, seed=seed + 1)
