"""Edge-list I/O for CSR graphs.

Supports the whitespace-separated edge-list format used by the Network
Repository datasets the paper evaluates on (``u v`` per line, optional
``%`` / ``#`` comment lines, optional weight column which is ignored).
"""

from __future__ import annotations

import io
from pathlib import Path

import numpy as np

from repro.errors import GraphError
from repro.graphs.csr import CSRGraph, VERTEX_DTYPE


def read_edge_list(path: str | Path | io.TextIOBase, *, num_vertices: int | None = None) -> CSRGraph:
    """Read an undirected graph from an edge-list file or file object."""
    if isinstance(path, io.TextIOBase):
        lines = path.readlines()
    else:
        with open(path, "r", encoding="utf-8") as fh:
            lines = fh.readlines()
    edges: list[tuple[int, int]] = []
    for lineno, line in enumerate(lines, start=1):
        stripped = line.strip()
        if not stripped or stripped[0] in "%#":
            continue
        parts = stripped.split()
        if len(parts) < 2:
            raise GraphError(f"line {lineno}: expected 'u v', got {stripped!r}")
        try:
            u, v = int(parts[0]), int(parts[1])
        except ValueError as exc:
            raise GraphError(f"line {lineno}: non-integer endpoint") from exc
        if u < 0 or v < 0:
            raise GraphError(f"line {lineno}: negative vertex id")
        edges.append((u, v))
    arr = np.asarray(edges, dtype=VERTEX_DTYPE).reshape(-1, 2)
    if num_vertices is None:
        num_vertices = int(arr.max()) + 1 if arr.size else 0
    return CSRGraph.from_edges(num_vertices, arr)


def write_edge_list(graph: CSRGraph, path: str | Path | io.TextIOBase) -> None:
    """Write each undirected edge once as ``u v`` lines."""
    def _emit(fh) -> None:
        fh.write(f"# n={graph.num_vertices} m={graph.num_edges}\n")
        for u, v in graph.edge_array():
            fh.write(f"{u} {v}\n")

    if isinstance(path, io.TextIOBase):
        _emit(path)
    else:
        with open(path, "w", encoding="utf-8") as fh:
            _emit(fh)
