"""Directed (oriented) CSR graphs.

Several of the paper's algorithms orient the undirected input according
to a vertex order eta (typically the degeneracy order): an arc goes from
``v`` to ``u`` iff ``eta(v) < eta(u)``.  The resulting DAG has out-degree
bounded by the degeneracy (paper Section 7.1), which is what gives
k-clique listing its work bound.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.errors import GraphError
from repro.graphs.csr import CSRGraph, OFFSET_DTYPE, VERTEX_DTYPE


class DiGraph:
    """An immutable directed graph in CSR form with sorted out-neighborhoods."""

    __slots__ = ("offsets", "targets", "_degrees")

    def __init__(self, offsets: np.ndarray, targets: np.ndarray):
        self.offsets = np.asarray(offsets, dtype=OFFSET_DTYPE)
        self.targets = np.asarray(targets, dtype=VERTEX_DTYPE)
        if self.offsets.ndim != 1 or self.offsets.size == 0:
            raise GraphError("offsets must be a 1-D array of length n + 1")
        if self.offsets[0] != 0 or self.offsets[-1] != self.targets.size:
            raise GraphError("offsets must start at 0 and end at len(targets)")
        if self.targets.size and (
            self.targets.min() < 0 or self.targets.max() >= self.num_vertices
        ):
            raise GraphError("target vertex id out of range")
        self._degrees = np.diff(self.offsets)

    @classmethod
    def from_arcs(
        cls, num_vertices: int, arcs: Iterable[tuple[int, int]] | np.ndarray
    ) -> "DiGraph":
        arr = np.asarray(
            list(arcs) if not isinstance(arcs, np.ndarray) else arcs,
            dtype=VERTEX_DTYPE,
        ).reshape(-1, 2)
        if arr.size and (arr.min() < 0 or arr.max() >= num_vertices):
            raise GraphError("arc endpoint out of range")
        if arr.size:
            keys = arr[:, 0] * num_vertices + arr[:, 1]
            __, unique_idx = np.unique(keys, return_index=True)
            arr = arr[np.sort(unique_idx)]
            order = np.lexsort((arr[:, 1], arr[:, 0]))
            arr = arr[order]
        offsets = np.zeros(num_vertices + 1, dtype=OFFSET_DTYPE)
        if arr.size:
            np.add.at(offsets, arr[:, 0] + 1, 1)
        np.cumsum(offsets, out=offsets)
        targets = arr[:, 1] if arr.size else np.empty(0, dtype=VERTEX_DTYPE)
        return cls(offsets, targets)

    @property
    def num_vertices(self) -> int:
        return self.offsets.size - 1

    @property
    def num_arcs(self) -> int:
        return self.targets.size

    @property
    def out_degrees(self) -> np.ndarray:
        return self._degrees

    @property
    def max_out_degree(self) -> int:
        return int(self._degrees.max()) if self.num_vertices else 0

    def out_neighbors(self, v: int) -> np.ndarray:
        """Sorted out-neighborhood ``N+(v)`` as a read-only view."""
        if not 0 <= v < self.num_vertices:
            raise GraphError(f"vertex {v} out of range")
        return self.targets[self.offsets[v] : self.offsets[v + 1]]

    def has_arc(self, u: int, v: int) -> bool:
        nbrs = self.out_neighbors(u)
        i = np.searchsorted(nbrs, v)
        return bool(i < nbrs.size and nbrs[i] == v)

    def __repr__(self) -> str:
        return f"DiGraph(n={self.num_vertices}, arcs={self.num_arcs})"


def orient_by_order(graph: CSRGraph, order: np.ndarray) -> DiGraph:
    """Orient ``graph`` by a vertex order: arc ``v -> u`` iff ``rank[v] < rank[u]``.

    ``order[i]`` is the vertex at position ``i`` (so ``order`` is a
    permutation of ``0..n-1``).  This is the paper's ``dir(G)`` step in
    Algorithm 3.
    """
    n = graph.num_vertices
    order = np.asarray(order, dtype=VERTEX_DTYPE)
    if order.size != n or np.any(np.sort(order) != np.arange(n)):
        raise GraphError("order must be a permutation of all vertices")
    rank = np.empty(n, dtype=VERTEX_DTYPE)
    rank[order] = np.arange(n, dtype=VERTEX_DTYPE)
    edges = graph.edge_array()
    if edges.size == 0:
        return DiGraph.from_arcs(n, edges)
    forward = rank[edges[:, 0]] < rank[edges[:, 1]]
    arcs = np.where(forward[:, None], edges, edges[:, ::-1])
    return DiGraph.from_arcs(n, arcs)
