"""Vertex and edge labelings for labeled graphs ``G = (V, E, L)``.

The paper (Section 6.3.1) stores vertex labels as a sparse array indexed
by vertex id; edge labels are kept per (canonical) edge.  Subgraph
isomorphism (Algorithm 7) consumes this interface in ``verify_labels``.
"""

from __future__ import annotations

from typing import Iterable, Mapping

import numpy as np

from repro.errors import GraphError
from repro.graphs.csr import CSRGraph


class Labeling:
    """Labels for vertices and (optionally) edges of one graph."""

    def __init__(
        self,
        graph: CSRGraph,
        vertex_labels: Iterable[int] | np.ndarray,
        edge_labels: Mapping[tuple[int, int], int] | None = None,
    ):
        self.vertex_labels = np.asarray(vertex_labels, dtype=np.int64)
        if self.vertex_labels.size != graph.num_vertices:
            raise GraphError("need exactly one label per vertex")
        self._edge_labels: dict[tuple[int, int], int] = {}
        if edge_labels:
            for (u, v), lab in edge_labels.items():
                if not graph.has_edge(u, v):
                    raise GraphError(f"edge label on a non-edge ({u}, {v})")
                self._edge_labels[(min(u, v), max(u, v))] = int(lab)

    def vertex_label(self, v: int) -> int:
        return int(self.vertex_labels[v])

    def edge_label(self, u: int, v: int, default: int = 0) -> int:
        return self._edge_labels.get((min(u, v), max(u, v)), default)

    @property
    def num_vertex_labels(self) -> int:
        return int(np.unique(self.vertex_labels).size)

    @classmethod
    def random(
        cls, graph: CSRGraph, num_labels: int, *, seed: int = 0
    ) -> "Labeling":
        """Uniform random vertex labels, as in the paper's labeled-SI runs
        ("each vertex receives a label selected at random out of 3 ones").
        """
        rng = np.random.default_rng(seed)
        return cls(graph, rng.integers(0, num_labels, size=graph.num_vertices))
