"""DynamicSetGraph: a mutable view over a SetGraph.

The paper's predefined graph structure fixes each neighborhood's
representation when the program starts (Section 6.1).  A streaming
workload breaks both assumptions that rule rests on: neighborhoods
mutate (through the element-update instructions of Table 5) and their
densities drift.  :class:`DynamicSetGraph` therefore

* applies batched edge insertions/deletions through the batched
  element-update dispatch
  (:meth:`repro.runtime.context.SisaContext.insert_batch` /
  ``remove_batch`` — cycle-identical to the sequential scalar stream),
* keeps the per-set ``SetMeta`` cardinality/representation state
  consistent (the runtime does this per update), and
* re-decides the SA ↔ DB representation of any neighborhood whose
  degree crosses the density thresholds after a batch, charged as a
  streaming read plus a CREATE of the new representation.

Because set values are immutable Python objects (every update installs
a *new* value), a consistent :class:`GraphSnapshot` is just a capture
of the current value references — copy-on-write, no data movement.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError, SisaError
from repro.graphs.csr import CSRGraph
from repro.graphs.streams import EdgeBatch, canonical_edges
from repro.hw.cost import Cost
from repro.runtime.context import SisaContext
from repro.runtime.setgraph import SetGraph
from repro.sets.sparse import WORD_BITS


def ensure_live_view(view) -> None:
    """Reject a released :class:`GraphSnapshot` before any set work.

    A released snapshot's set IDs are freed — and may already be
    recycled for unrelated sets — so computing over it would silently
    read garbage.  Shared by ``SisaSession.run(..., view=...)`` and the
    incremental maintainers.
    """
    if getattr(view, "_released", False):
        raise SisaError(
            f"snapshot of epoch {view.epoch} has been released; its set "
            "IDs may have been recycled — capture a fresh snapshot"
        )


class _SetView:
    """Shared read interface of the live graph and its snapshots."""

    ctx: SisaContext
    universe: int
    _set_ids: list[int]

    @property
    def num_vertices(self) -> int:
        return len(self._set_ids)

    def neighborhood(self, v: int) -> int:
        """Set ID of ``N(v)``."""
        return self._set_ids[v]

    @property
    def set_ids(self) -> list[int]:
        return self._set_ids

    def degree(self, v: int) -> int:
        return self.ctx.sm.meta(self._set_ids[v]).cardinality

    def neighborhood_counts(self, u: int, vs) -> np.ndarray:
        """Batched ``|N(u) ∩ N(v)|`` fan-out, as on ``SetGraph``."""
        ids = self._set_ids
        if isinstance(vs, np.ndarray):
            vs = vs.tolist()
        return self.ctx.intersect_count_batch(ids[u], [ids[v] for v in vs])

    def has_edge(self, u: int, v: int) -> bool:
        """Model-internal adjacency probe (charges nothing)."""
        return self.ctx.value(self._set_ids[u]).contains(v)

    def edge_array(self) -> np.ndarray:
        """Current undirected edges, ``u < v`` rows (model-internal
        export, e.g. for rebuild-equivalence checks)."""
        rows = []
        for u, sid in enumerate(self._set_ids):
            nbrs = self.ctx.value(sid).to_array()
            upper = nbrs[nbrs > u]
            if upper.size:
                rows.append(np.column_stack([np.full(upper.size, u, dtype=np.int64), upper]))
        if not rows:
            return np.empty((0, 2), dtype=np.int64)
        return np.concatenate(rows)


class GraphSnapshot(_SetView):
    """A consistent, immutable view of one epoch of the live graph.

    Snapshotting is copy-on-write: set values are immutable, so the
    snapshot just registers the current value references under fresh
    set IDs (one SM-entry write each — no set data is touched).  The
    live graph keeps mutating; analytics against the snapshot see the
    captured epoch until :meth:`release` frees its IDs.  Reading a
    *released* snapshot raises :class:`~repro.errors.SisaError`: its set
    IDs may already be recycled for unrelated sets, so the computation
    would silently produce garbage.
    """

    def __init__(self, dynamic: "DynamicSetGraph"):
        ctx = dynamic.ctx
        self.ctx = ctx
        self.universe = dynamic.universe
        self.epoch = dynamic.epoch
        values = [ctx.sm.value(sid) for sid in dynamic.set_ids]
        self._set_ids = [ctx.sm.register(value) for value in values]
        # The SCU writes one SM entry per aliased set; no data movement.
        ctx.charge_host(
            Cost(compute_cycles=ctx.hw.scu_dispatch_cycles * len(values))
        )
        self._released = False

    def release(self) -> None:
        """Free the snapshot's set IDs (DELETE per aliased set)."""
        if self._released:
            return
        for sid in self._set_ids:
            self.ctx.free(sid)
        self._released = True

    @property
    def released(self) -> bool:
        return self._released

    def neighborhood(self, v: int) -> int:
        ensure_live_view(self)
        return super().neighborhood(v)

    def degree(self, v: int) -> int:
        ensure_live_view(self)
        return super().degree(v)

    def neighborhood_counts(self, u: int, vs) -> np.ndarray:
        ensure_live_view(self)
        return super().neighborhood_counts(u, vs)

    def has_edge(self, u: int, v: int) -> bool:
        ensure_live_view(self)
        return super().has_edge(u, v)

    def edge_array(self) -> np.ndarray:
        ensure_live_view(self)
        return super().edge_array()


class DynamicSetGraph(_SetView):
    """Neighborhood sets that evolve under batched edge updates.

    Construct it over an existing :class:`SetGraph` (both views share
    the same set IDs, so static algorithms keep working on the evolving
    state) or directly via :meth:`from_graph`.

    ``dense_bits``/``sparse_bits`` are the re-decision thresholds in
    DB-storage fractions: a sparse neighborhood converts to a DB once
    ``W * degree >= dense_bits * n`` (at 1.0 the DB is no larger than
    the SA it replaces), and a DB falls back to an SA once
    ``W * degree < sparse_bits * n`` (the gap is hysteresis, so a
    neighborhood oscillating around the threshold does not thrash).
    On the ``cpu-set`` host baseline every neighborhood stays an SA,
    as at construction.
    """

    def __init__(
        self,
        base: SetGraph,
        *,
        dense_bits: float = 1.0,
        sparse_bits: float = 0.25,
    ):
        if not 0.0 < sparse_bits <= dense_bits:
            raise ConfigError("need 0 < sparse_bits <= dense_bits")
        self.base = base
        self.ctx = base.ctx
        self.universe = base.universe
        self._set_ids = base.set_ids
        self._dense_mask = base.dense_mask
        self._dense_degree = dense_bits * base.universe / WORD_BITS
        self._sparse_degree = sparse_bits * base.universe / WORD_BITS
        self.epoch = 0
        # Counts every applied update burst, including mid-batch ones
        # (epoch only advances at finish_batch).  Consumers caching
        # derived state — e.g. a session's CSR/orientation caches — key
        # on (epoch, mutations) so partially applied batches are never
        # mistaken for the last finished epoch.
        self.mutations = 0
        # Maintainers subscribed directly to this graph (e.g. a
        # session's orientation maintainer).  They are driven through
        # the same delete→observe→insert protocol as engine-owned
        # maintainers, by apply_batch and by every StreamingEngine
        # step.  Raw apply_insertions/apply_deletions calls bypass
        # them — subscribers detect that through ``mutations``.
        self._subscribers: list = []

    @classmethod
    def from_graph(
        cls,
        graph: CSRGraph,
        ctx: SisaContext,
        *,
        t: float = 0.4,
        budget: float = 0.1,
        policy: str = "fraction",
        dense_bits: float = 1.0,
        sparse_bits: float = 0.25,
    ) -> "DynamicSetGraph":
        base = SetGraph.from_graph(graph, ctx, t=t, budget=budget, policy=policy)
        return cls(base, dense_bits=dense_bits, sparse_bits=sparse_bits)

    @property
    def dense_mask(self) -> np.ndarray:
        return self._dense_mask

    @property
    def version(self) -> tuple[int, int]:
        """The stream state stamp ``(epoch, mutations)``.

        Every consumer that caches state derived from the live sets —
        session CSR/orientation caches, result-cache keys, compiled
        :class:`~repro.session.plan.WorkloadPlan` pins — keys on this
        tuple; the mutation count covers mid-batch updates that have not
        advanced the epoch yet."""
        return (self.epoch, self.mutations)

    @property
    def edge_count(self) -> int:
        sm = self.ctx.sm
        return sum(sm.meta(sid).cardinality for sid in self._set_ids) // 2

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------

    def _edge_updates(self, edges: np.ndarray) -> list[tuple[int, int]]:
        ids = self._set_ids
        updates: list[tuple[int, int]] = []
        for u, v in edges:
            updates.append((ids[u], int(v)))
            updates.append((ids[v], int(u)))
        return updates

    def apply_insertions(
        self, edges: np.ndarray, *, canonical: bool = False
    ) -> np.ndarray:
        """Insert an edge batch; every requested update dispatches an
        element-update instruction (already-present edges are charged
        no-ops, as in the scalar stream).  Returns the effective
        (actually new) edges.  ``canonical=True`` skips
        re-canonicalization for callers that already did it."""
        if not canonical:
            edges = canonical_edges(edges, self.num_vertices)
        if edges.shape[0] == 0:
            return edges
        self.mutations += 1
        flags = self.ctx.insert_batch(self._edge_updates(edges))
        return edges[flags[0::2]]

    def apply_deletions(
        self, edges: np.ndarray, *, canonical: bool = False
    ) -> np.ndarray:
        """Delete an edge batch; returns the effective (actually
        removed) edges."""
        if not canonical:
            edges = canonical_edges(edges, self.num_vertices)
        if edges.shape[0] == 0:
            return edges
        self.mutations += 1
        flags = self.ctx.remove_batch(self._edge_updates(edges))
        return edges[flags[0::2]]

    def absent_edges(self, edges: np.ndarray) -> np.ndarray:
        """The subset of a canonical edge array not currently in the
        graph (model-internal: one vectorized membership probe per
        distinct first endpoint)."""
        if edges.shape[0] == 0:
            return edges
        value = self.ctx.value
        ids = self._set_ids
        groups: dict[int, list[int]] = {}
        for k, (u, _) in enumerate(edges):
            groups.setdefault(int(u), []).append(k)
        absent = np.zeros(edges.shape[0], dtype=bool)
        for u, rows in groups.items():
            vs = edges[rows, 1]
            absent[rows] = ~value(ids[u]).contains_many(vs)
        return edges[absent]

    def finish_batch(self, touched: np.ndarray) -> int:
        """Close out one update batch: re-decide representations for the
        touched vertices and advance the epoch.  Returns the number of
        SA ↔ DB conversions performed."""
        conversions = 0
        if self.ctx.mode != "cpu-set":
            mask = self._dense_mask
            for v in np.asarray(touched, dtype=np.int64).ravel():
                deg = self.degree(int(v))
                if not mask[v] and deg >= self._dense_degree:
                    if self.ctx.convert_representation(self._set_ids[v], dense=True):
                        mask[v] = True
                        conversions += 1
                elif mask[v] and deg < self._sparse_degree:
                    if self.ctx.convert_representation(self._set_ids[v], dense=False):
                        mask[v] = False
                        conversions += 1
        self.epoch += 1
        return conversions

    # ------------------------------------------------------------------
    # Maintainer subscriptions
    # ------------------------------------------------------------------

    def subscribe(self, maintainer) -> None:
        """Register a :class:`StreamMaintainer` hook on the graph
        itself: it observes every batch applied through
        :meth:`apply_batch` *or* a :class:`StreamingEngine`, in
        addition to any engine-owned maintainers."""
        if maintainer not in self._subscribers:
            self._subscribers.append(maintainer)

    def unsubscribe(self, maintainer) -> None:
        self._subscribers.remove(maintainer)

    @property
    def subscribers(self) -> tuple:
        return tuple(self._subscribers)

    def apply_batch(self, batch: EdgeBatch) -> tuple[np.ndarray, np.ndarray]:
        """Apply one :class:`EdgeBatch` (deletions first, then
        insertions) and finish the epoch.  Returns the effective
        ``(deleted, inserted)`` edge arrays.  Subscribed maintainers
        observe the batch through the engine protocol (both counting
        hooks see the intermediate graph ``G1``); use
        :class:`~repro.streaming.engine.StreamingEngine` when
        *additional* per-engine maintainers are involved."""
        deleted, inserted, __, __ = drive_batch(
            self, list(self._subscribers), batch
        )
        return deleted, inserted

    def snapshot(self) -> GraphSnapshot:
        """Capture the current epoch as a consistent read-only view."""
        return GraphSnapshot(self)


def touched_vertices(*edge_arrays: np.ndarray) -> np.ndarray:
    """Unique endpoints across effective edge arrays."""
    parts = [np.asarray(e, dtype=np.int64).ravel() for e in edge_arrays if len(e)]
    if not parts:
        return np.empty(0, dtype=np.int64)
    return np.unique(np.concatenate(parts))


def drive_batch(
    dynamic: DynamicSetGraph, hooks, batch: EdgeBatch
) -> tuple[np.ndarray, np.ndarray, np.ndarray, int]:
    """The single implementation of the per-batch maintainer protocol.

    Shared by :meth:`DynamicSetGraph.apply_batch` (graph subscribers
    only) and :meth:`StreamingEngine.step` (engine maintainers plus
    subscribers), so the ordering contract — both counting hooks
    observe the intermediate graph ``G1``, after deletions and before
    insertions — is encoded exactly once:

    1. apply the deletion batch → ``G1``,
    2. ``on_deletions(G1, effective_deletions)`` per hook,
    3. resolve effective insertions against ``G1``, pre-apply,
    4. ``on_insertions(G1, effective_insertions)`` per hook,
    5. apply the insertion batch → ``G2``,
    6. ``on_applied(G2, touched_vertices)`` per hook,
    7. re-decide representations for touched vertices, advance the
       epoch.

    Returns ``(deleted, inserted, touched, conversions)``.
    """
    deleted = dynamic.apply_deletions(batch.deletions)
    for maintainer in hooks:
        maintainer.on_deletions(dynamic, deleted)
    insertions = canonical_edges(batch.insertions, dynamic.num_vertices)
    if hooks:
        effective = dynamic.absent_edges(insertions)
        for maintainer in hooks:
            maintainer.on_insertions(dynamic, effective)
    inserted = dynamic.apply_insertions(insertions, canonical=True)
    touched = touched_vertices(deleted, inserted)
    for maintainer in hooks:
        maintainer.on_applied(dynamic, touched)
    conversions = dynamic.finish_batch(touched)
    return deleted, inserted, touched, conversions
