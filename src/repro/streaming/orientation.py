"""Incremental degeneracy-orientation maintenance.

The oriented algorithms (triangle counting, k-clique, clique-star —
paper Section 7.1) consume an acyclic orientation of the graph: each
edge points from its lower-ranked endpoint under some total vertex
order.  *Which* total order is used never changes the functional
output — every clique is still enumerated exactly once from its
lowest-ranked vertex — it only changes the *work bound*: a degeneracy
order bounds every out-degree by the degeneracy ``c``.

That makes the orientation an ideal candidate for incremental
maintenance across stream epochs: instead of re-peeling and rebuilding
the oriented ``N+`` sets per run,

* each inserted edge is oriented by the **current** rank (one element
  insert into the source's ``N+`` set),
* each deleted edge removes its arc from whichever endpoint owns it,
* per-vertex out-degrees are tracked host-side, and
* only when the maintained maximum out-degree drifts past the
  ``(2 + eps) * c`` quality bound (the approximation ratio of the
  paper's streaming Algorithm 6) is the order repaired — first
  locally, by demoting the violating vertices to the end of the order
  (flipping only their out-arcs), then, if the repair cascade exceeds
  its budget, by a full re-peel.

All set mutations dispatch SISA element-update instructions on the
owning context, and a full re-peel is charged as the real rebuild it
is (one DELETE + one CREATE per ``N+`` set, plus the host-side
bucket-peel work), so maintained and rebuilt orientations compete on
equal modeled-cycle footing.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.graphs.csr import CSRGraph
from repro.graphs.digraph import DiGraph, orient_by_order
from repro.graphs.orientation import degeneracy_order, induced_out_degrees
from repro.parallel.ownership import assert_host_owned
from repro.streaming.graph import ensure_live_view
from repro.streaming.incremental import StreamMaintainer


@dataclass
class OrientationStats:
    """What the maintainer actually did, for assertions and reporting."""

    batches: int = 0  # update batches observed
    arc_updates: int = 0  # element updates applied to the N+ sets
    repairs: int = 0  # localized rank-repair passes
    repair_flips: int = 0  # arcs flipped by localized repairs
    full_repeels: int = 0  # drift-triggered full re-peels
    resyncs: int = 0  # recoveries from updates applied outside the hooks


class IncrementalOrientation(StreamMaintainer):
    """Keeps a degeneracy-style orientation valid across stream epochs.

    Construct it over the live :class:`DynamicSetGraph`, the oriented
    ``N+`` :class:`~repro.runtime.setgraph.SetGraph` to maintain (its
    sets are mutated in place through the shared context) and the
    :class:`~repro.graphs.orientation.DegeneracyResult` that seeded the
    orientation; then either subscribe it to the dynamic graph
    (``dynamic.subscribe(maintainer)``) or hand it to a
    :class:`~repro.streaming.engine.StreamingEngine`.

    ``eps`` sets the drift bound: the maintained maximum out-degree may
    grow to ``(2 + eps) * c`` (with ``c`` the degeneracy measured at
    the last peel) before any repair work is spent — the same quality
    bound the paper's streaming Algorithm 6 guarantees.

    ``repeel_every_batch=True`` turns the maintainer into the
    *reference* policy that re-peels after every batch — the baseline
    the orientation-maintenance benchmark (and the drift fallback)
    compares against.
    """

    def __init__(
        self,
        dynamic,
        oriented,
        seed,
        *,
        eps: float = 0.5,
        repair_limit: int = 64,
        repeel_every_batch: bool = False,
    ):
        ensure_live_view(dynamic)
        if eps <= 0:
            raise ConfigError("eps must be positive")
        if repair_limit < 0:
            raise ConfigError("repair_limit must be non-negative")
        if oriented.num_vertices != dynamic.num_vertices:
            raise ConfigError(
                "oriented SetGraph and dynamic graph disagree on the "
                "vertex universe"
            )
        self.dynamic = dynamic
        self.ctx = dynamic.ctx
        self.oriented = oriented
        self.eps = float(eps)
        self.repair_limit = int(repair_limit)
        self.repeel_every_batch = bool(repeel_every_batch)
        n = dynamic.num_vertices
        # Maintained rank: any array of distinct keys induces a valid
        # acyclic orientation, so localized repair can append past n.
        self.rank = np.asarray(seed.rank, dtype=np.int64).copy()
        self._next_rank = int(self.rank.max(initial=-1)) + 1
        self.base_degeneracy = int(seed.degeneracy)
        sm = self.ctx.sm
        self.out_degree = np.asarray(
            [sm.meta(sid).cardinality for sid in oriented.set_ids],
            dtype=np.int64,
        )
        self.stats = OrientationStats()
        # Optional observability hub (set by the owning session);
        # mirrors maintenance events into labeled counters.
        self.obs = None
        # Optional mutation hook ``(op) -> None`` — the race detector's
        # shim.  Every mutation of the maintained rank/out-degree state
        # (incremental arc updates, repairs, re-peels, desyncs) reports
        # through it; repolint's session-state-mutation rule keeps
        # direct ``rank``/``out_degree`` writes confined to this module
        # so the hook stays complete.
        self.event = None
        # Bumped on every mutation of the maintained orientation
        # (incremental updates, repairs, re-peels): consumers caching
        # derived views (e.g. the session's DiGraph export) key on it.
        self.revision = 0
        self._synced_mutations = dynamic.mutations
        self._n = n

    # ------------------------------------------------------------------

    @property
    def bound(self) -> int:
        """Maximum tolerated out-degree, ``(2 + eps) * c`` (at least 1,
        so an empty seed graph does not re-peel on every insertion)."""
        return int((2.0 + self.eps) * max(1, self.base_degeneracy))

    @property
    def max_out_degree(self) -> int:
        return int(self.out_degree.max(initial=0))

    @property
    def synced_mutations(self) -> int:
        """The ``DynamicSetGraph.mutations`` value this maintainer has
        fully incorporated.  A mismatch with the live counter means
        updates were applied outside the hook protocol (raw
        ``apply_insertions``/``apply_deletions``) and the orientation
        needs a :meth:`resync`."""
        return self._synced_mutations

    @property
    def in_sync(self) -> bool:
        return self._synced_mutations == self.dynamic.mutations

    # ------------------------------------------------------------------
    # StreamMaintainer hooks
    # ------------------------------------------------------------------

    def _oriented_arcs(
        self, edges: np.ndarray
    ) -> tuple[list[tuple[int, int]], np.ndarray]:
        """(set_id, element) updates plus the source vertex per edge,
        orienting each edge by the current rank."""
        ids = self.oriented.set_ids
        rank = self.rank
        updates: list[tuple[int, int]] = []
        srcs = np.empty(len(edges), dtype=np.int64)
        for k, (u, v) in enumerate(edges):
            u, v = int(u), int(v)
            src, dst = (u, v) if rank[u] < rank[v] else (v, u)
            updates.append((ids[src], dst))
            srcs[k] = src
        # Rank comparisons are host-side bookkeeping.
        self.ctx.charge_host_ops(2.0 * len(edges))
        return updates, srcs

    def on_deletions(self, dynamic, edges: np.ndarray) -> None:
        assert_host_owned("orientation-maintainer", op="on_deletions")
        ensure_live_view(dynamic)
        if self.repeel_every_batch or len(edges) == 0:
            return
        if self.event is not None:
            self.event("write")
        updates, srcs = self._oriented_arcs(edges)
        flags = self.ctx.remove_batch(updates)
        np.subtract.at(self.out_degree, srcs[flags], 1)
        self.stats.arc_updates += len(updates)
        self.revision += 1
        self._synced_mutations = dynamic.mutations

    def on_insertions(self, dynamic, edges: np.ndarray) -> None:
        assert_host_owned("orientation-maintainer", op="on_insertions")
        ensure_live_view(dynamic)
        if self.repeel_every_batch or len(edges) == 0:
            return
        if self.event is not None:
            self.event("write")
        updates, srcs = self._oriented_arcs(edges)
        flags = self.ctx.insert_batch(updates)
        np.add.at(self.out_degree, srcs[flags], 1)
        self.stats.arc_updates += len(updates)
        self.revision += 1

    def on_applied(self, dynamic, touched: np.ndarray) -> None:
        assert_host_owned("orientation-maintainer", op="on_applied")
        ensure_live_view(dynamic)
        self.stats.batches += 1
        if self.obs is not None:
            self.obs.orientation_event("batch")
        if self.repeel_every_batch:
            if touched.size:
                self._repeel(dynamic)
            self._synced_mutations = dynamic.mutations
            return
        self._synced_mutations = dynamic.mutations
        if touched.size and self.max_out_degree > self.bound:
            self._repair(dynamic)

    # ------------------------------------------------------------------
    # Repair paths
    # ------------------------------------------------------------------

    def _repair(self, dynamic) -> None:
        """Localized rank repair: demote each violating vertex to the
        end of the order, flipping only its out-arcs.  A demoted
        vertex's out-degree drops to zero while each former out-
        neighbor gains one, so the cascade usually dies out in a few
        steps; if it exceeds ``repair_limit`` demotions, fall back to a
        full re-peel."""
        if self.event is not None:
            self.event("write")
        ctx = self.ctx
        ids = self.oriented.set_ids
        out = self.out_degree
        bound = self.bound
        queue = [int(v) for v in np.flatnonzero(out > bound)]
        demoted = 0
        flips = 0
        while queue:
            if demoted >= self.repair_limit:
                self._repeel(dynamic)
                return
            v = queue.pop()
            if out[v] <= bound:
                continue
            # Stream N+(v) out of memory (charged scan), then flip each
            # out-arc v->w into w->v.
            out_nbrs = ctx.elements(ids[v])
            self.rank[v] = self._next_rank
            self._next_rank += 1
            removes = [(ids[v], int(w)) for w in out_nbrs]
            inserts = [(ids[int(w)], v) for w in out_nbrs]
            ctx.remove_batch(removes)
            ctx.insert_batch(inserts)
            self.stats.arc_updates += len(removes) + len(inserts)
            out[v] = 0
            for w in out_nbrs:
                w = int(w)
                out[w] += 1
                if out[w] == bound + 1:
                    queue.append(w)
            ctx.charge_host_ops(2.0 * out_nbrs.size + 2.0)
            demoted += 1
            flips += int(out_nbrs.size)
        self.stats.repairs += 1
        self.stats.repair_flips += flips
        self.revision += 1
        if self.obs is not None:
            self.obs.orientation_event("repair")

    def _repeel(self, dynamic) -> None:
        """Full re-peel: recompute the exact degeneracy order of the
        current graph and rebuild every ``N+`` set.

        Charged as the rebuild it models — ``O(n + m)`` host work for
        the Matula–Beck bucket peel plus one DELETE and one CREATE per
        ``N+`` set — so avoiding re-peels is what the maintainer's
        modeled-cycle win is measured against.
        """
        assert_host_owned("orientation-maintainer", op="repeel")
        if self.event is not None:
            self.event("write")
        ctx = self.ctx
        n = dynamic.num_vertices
        edges = dynamic.edge_array()
        graph = CSRGraph.from_edges(n, edges)
        result = degeneracy_order(graph)
        ctx.charge_host_ops(float(n + 2 * edges.shape[0]))
        self.rank = result.rank.astype(np.int64, copy=True)
        self._next_rank = n
        self.base_degeneracy = int(result.degeneracy)
        digraph = orient_by_order(graph, result.order)
        ids = self.oriented.set_ids
        dense_mask = self.oriented.dense_mask
        for v in range(n):
            ctx.free(ids[v])
            ids[v] = ctx.create_set(
                digraph.out_neighbors(v),
                universe=n,
                dense=bool(dense_mask[v]),
            )
        self.out_degree = digraph.out_degrees.astype(np.int64, copy=True)
        self.stats.full_repeels += 1
        self.revision += 1
        self._synced_mutations = dynamic.mutations
        if self.obs is not None:
            self.obs.orientation_event("repeel")

    def repeel(self) -> None:
        """Force a full re-peel of the maintained orientation now."""
        self._repeel(self.dynamic)

    def resync(self) -> None:
        """Recover from updates applied outside the hook protocol (raw
        ``apply_insertions``/``apply_deletions`` on the dynamic graph):
        the maintained rank and out-degrees can no longer be trusted,
        so re-peel from the current graph state."""
        self.stats.resyncs += 1
        if self.obs is not None:
            self.obs.orientation_event("resync")
        self._repeel(self.dynamic)

    def mark_desynced(self) -> None:
        """Declare the maintained orientation untrusted without
        touching it, as if raw updates had bypassed the hooks.  The
        next oriented-structure access degrades to a charged
        :meth:`resync` — the serving fault injector uses this to
        exercise that path on demand."""
        assert_host_owned("orientation-maintainer", op="mark_desynced")
        if self.event is not None:
            self.event("write")
        self._synced_mutations = -1
        if self.obs is not None:
            self.obs.orientation_event("desync")

    # ------------------------------------------------------------------
    # Verification (model-internal, test support)
    # ------------------------------------------------------------------

    def export_digraph(self) -> DiGraph:
        """The maintained orientation as an immutable
        :class:`~repro.graphs.digraph.DiGraph` (model-internal
        export)."""
        sm = self.ctx.sm
        arcs = []
        for v, sid in enumerate(self.oriented.set_ids):
            targets = sm.value(sid).to_array()
            if targets.size:
                arcs.append(
                    np.column_stack(
                        [np.full(targets.size, v, dtype=np.int64), targets]
                    )
                )
        if not arcs:
            return DiGraph.from_arcs(self._n, np.empty((0, 2), dtype=np.int64))
        return DiGraph.from_arcs(self._n, np.concatenate(arcs))

    def assert_consistent(self, dynamic=None) -> None:
        """Assert the maintained state equals a fresh orientation of
        the current graph by the maintained rank: same arcs, same
        out-degrees, out-degree within the drift bound.  Model-internal
        (charges nothing); used by tests and the benchmark."""
        dynamic = self.dynamic if dynamic is None else dynamic
        sm = self.ctx.sm
        graph = CSRGraph.from_edges(dynamic.num_vertices, dynamic.edge_array())
        expected_out = induced_out_degrees(graph, self.rank)
        if not np.array_equal(expected_out, self.out_degree):
            raise AssertionError("maintained out-degrees drifted")
        if self.max_out_degree > max(self.bound, self.base_degeneracy):
            raise AssertionError("maintained out-degree exceeds the bound")
        rank = self.rank
        for v in range(dynamic.num_vertices):
            nbrs = graph.neighbors(v)
            expected = np.sort(nbrs[rank[nbrs] > rank[v]])
            actual = np.sort(sm.value(self.oriented.set_ids[v]).to_array())
            if not np.array_equal(expected, actual):
                raise AssertionError(f"oriented set of vertex {v} drifted")
