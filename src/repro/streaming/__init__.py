"""Streaming dynamic-graph subsystem.

The first subsystem where the simulated machine's state evolves over
time: batched edge insertions/deletions charged through the batched
element-update dispatch, incremental analytics maintainers that touch
only the vertices an update batch affects, and an epoch/snapshot API
for running analytics against a consistent view while updates stream.

Layers:

* :mod:`repro.streaming.graph` — :class:`DynamicSetGraph` (a mutable
  view over a :class:`~repro.runtime.setgraph.SetGraph`) and
  :class:`GraphSnapshot` (zero-copy consistent views).
* :mod:`repro.streaming.incremental` — incremental maintainers for
  triangle counts, local clustering coefficients and link-prediction
  scores, plus their full-recompute references.
* :mod:`repro.streaming.orientation` —
  :class:`IncrementalOrientation`, degeneracy-orientation maintenance
  across epochs (oriented workloads stay warm on streams).
* :mod:`repro.streaming.engine` — :class:`StreamingEngine`, the batch
  orchestrator wiring maintainers to the delete-then-insert protocol.

Edge-stream workloads live in :mod:`repro.graphs.streams`.
"""

from repro.streaming.engine import StepResult, StreamingEngine
from repro.streaming.graph import (
    DynamicSetGraph,
    GraphSnapshot,
    ensure_live_view,
)
from repro.streaming.incremental import (
    IncrementalClusteringCoefficients,
    IncrementalLinkPrediction,
    IncrementalTriangleCount,
    StreamMaintainer,
    clustering_coefficients_from_counts,
    local_triangle_counts,
    watchlist_scores,
)
from repro.streaming.orientation import IncrementalOrientation, OrientationStats

__all__ = [
    "StepResult",
    "StreamingEngine",
    "DynamicSetGraph",
    "GraphSnapshot",
    "IncrementalClusteringCoefficients",
    "IncrementalLinkPrediction",
    "IncrementalOrientation",
    "IncrementalTriangleCount",
    "OrientationStats",
    "StreamMaintainer",
    "clustering_coefficients_from_counts",
    "ensure_live_view",
    "local_triangle_counts",
    "watchlist_scores",
]
