"""StreamingEngine: the per-batch orchestration protocol.

The delta algebra of :mod:`repro.streaming.incremental` requires both
counting hooks to observe the *intermediate* graph ``G1`` — after a
batch's deletions, before its insertions.  The engine enforces that
ordering so maintainers never have to reason about it:

1. apply the deletion batch (batched element-update burst) → ``G1``,
2. ``on_deletions(G1, effective_deletions)`` for every maintainer,
3. ``on_insertions(G1, effective_insertions)`` for every maintainer,
4. apply the insertion batch → ``G2``,
5. ``on_applied(G2, touched_vertices)`` for every maintainer,
6. re-decide representations for touched vertices, advance the epoch.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graphs.streams import EdgeBatch
from repro.streaming.graph import DynamicSetGraph, drive_batch
from repro.streaming.incremental import StreamMaintainer


@dataclass(frozen=True)
class StepResult:
    """What one streamed batch actually did to the graph."""

    epoch: int
    deleted: np.ndarray
    inserted: np.ndarray
    touched: np.ndarray
    conversions: int


class StreamingEngine:
    """Drives a :class:`DynamicSetGraph` and its maintainers batch by
    batch."""

    def __init__(
        self,
        dynamic: DynamicSetGraph,
        maintainers: tuple[StreamMaintainer, ...] | list[StreamMaintainer] = (),
    ):
        self.dynamic = dynamic
        self.maintainers = list(maintainers)

    def add_maintainer(self, maintainer: StreamMaintainer) -> None:
        self.maintainers.append(maintainer)

    def _hooks(self) -> list[StreamMaintainer]:
        """Engine-owned maintainers plus the dynamic graph's own
        subscribers (e.g. a session's orientation maintainer), each
        notified once per protocol stage."""
        hooks = list(self.maintainers)
        for maintainer in self.dynamic.subscribers:
            if maintainer not in hooks:
                hooks.append(maintainer)
        return hooks

    def step(self, batch: EdgeBatch) -> StepResult:
        dynamic = self.dynamic
        deleted, inserted, touched, conversions = drive_batch(
            dynamic, self._hooks(), batch
        )
        return StepResult(
            epoch=dynamic.epoch,
            deleted=deleted,
            inserted=inserted,
            touched=touched,
            conversions=conversions,
        )

    def run(self, batches) -> list[StepResult]:
        return [self.step(batch) for batch in batches]
