"""Incremental analytics maintainers for streaming graphs.

Every maintainer updates its statistic from an *effective* edge batch
(the edges that actually changed the graph) instead of recomputing
from scratch, touching only the vertices the batch affects.  All set
work goes through SISA instructions on the owning context, so the
incremental path is cycle-accounted exactly like the static
algorithms it replaces.

The delta algebra (the :class:`~repro.streaming.engine.StreamingEngine`
protocol guarantees both hooks observe the *intermediate* graph ``G1``
— after the batch's deletions, before its insertions):

* inserting an edge set ``I`` into ``G1`` creates
  ``Σ_{(u,v)∈I} |N_G1(u) ∩ N_G1(v)|`` triangles with one new edge,
  plus one triangle per pair of ``I``-edges sharing an endpoint whose
  closing edge is in ``G1``, plus the triangles formed entirely by
  ``I``-edges;
* deleting ``D`` from ``G`` destroys the mirror-image terms measured
  on ``G1 = G \\ D``.

Both cases therefore run the *same* counting code on ``G1``, with
opposite signs.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.similarity import (
    COUNT_MEASURES,
    all_pairs_similarity_on,
    iter_shared_first_runs,
    similarity_batch_on,
)
from repro.runtime.context import SisaContext
from repro.streaming.graph import ensure_live_view


# ---------------------------------------------------------------------------
# Full-recompute references (the static baselines the bench compares to)
# ---------------------------------------------------------------------------

def local_triangle_counts(view, ctx: SisaContext) -> np.ndarray:
    """Per-vertex triangle counts by full recompute: one batched count
    burst per vertex (``Σ_{u∈N(v)} |N(v) ∩ N(u)|`` counts each triangle
    at its center twice)."""
    counts = np.zeros(view.num_vertices, dtype=np.int64)
    for v in range(view.num_vertices):
        ctx.begin_task()
        nbrs = ctx.elements(view.neighborhood(v))
        if nbrs.size:
            counts[v] = int(view.neighborhood_counts(v, nbrs).sum()) // 2
    return counts


def clustering_coefficients_from_counts(
    counts: np.ndarray, degrees: np.ndarray
) -> np.ndarray:
    """Local clustering coefficients ``2 T_v / (d_v (d_v - 1))``."""
    d = degrees.astype(np.float64)
    denom = d * (d - 1.0)
    return np.divide(
        2.0 * counts.astype(np.float64),
        denom,
        out=np.zeros(counts.size, dtype=np.float64),
        where=denom > 0,
    )


def watchlist_scores(
    view, ctx: SisaContext, pairs: np.ndarray, *, measure: str = "jaccard"
) -> np.ndarray:
    """Similarity scores of a candidate-pair watchlist by full
    recompute (batched count bursts over shared-first-endpoint runs)."""
    return all_pairs_similarity_on(ctx, view, pairs, measure=measure)


def degrees_of(view) -> np.ndarray:
    """Per-vertex degrees from set metadata (model-internal)."""
    sm = view.ctx.sm
    return np.asarray(
        [sm.meta(sid).cardinality for sid in view.set_ids], dtype=np.int64
    )


# ---------------------------------------------------------------------------
# Maintainer protocol
# ---------------------------------------------------------------------------

class StreamMaintainer:
    """Hook interface the :class:`StreamingEngine` drives per batch.

    ``on_deletions``/``on_insertions`` both observe the intermediate
    graph ``G1`` (deletions applied, insertions not yet);
    ``on_applied`` observes the final post-batch graph.
    """

    def on_deletions(self, dynamic, edges: np.ndarray) -> None:  # noqa: B027
        pass

    def on_insertions(self, dynamic, edges: np.ndarray) -> None:  # noqa: B027
        pass

    def on_applied(self, dynamic, touched: np.ndarray) -> None:  # noqa: B027
        pass


def _sorted_canonical(edges: np.ndarray) -> np.ndarray:
    order = np.lexsort((edges[:, 1], edges[:, 0]))
    return edges[order]


def _incidence(edges: np.ndarray) -> dict[int, list[int]]:
    incident: dict[int, list[int]] = {}
    for u, v in edges:
        incident.setdefault(int(u), []).append(int(v))
        incident.setdefault(int(v), []).append(int(u))
    return incident


def _batch_adjacency(edges: np.ndarray) -> dict[int, set[int]]:
    adj: dict[int, set[int]] = {}
    for u, v in edges:
        adj.setdefault(int(u), set()).add(int(v))
        adj.setdefault(int(v), set()).add(int(u))
    return adj


class IncrementalTriangleCount(StreamMaintainer):
    """Maintains the global triangle count with count-form bursts only
    (no intermediate set is ever materialized)."""

    def __init__(self, dynamic, *, count: int | None = None):
        ensure_live_view(dynamic)
        if count is None:
            count = int(
                local_triangle_counts(dynamic, dynamic.ctx).sum()
            ) // 3
        self.count = count

    def on_deletions(self, dynamic, edges: np.ndarray) -> None:
        self.count -= self._delta(dynamic, edges)

    def on_insertions(self, dynamic, edges: np.ndarray) -> None:
        self.count += self._delta(dynamic, edges)

    def _delta(self, dynamic, edges: np.ndarray) -> int:
        if len(edges) == 0:
            return 0
        ctx = dynamic.ctx
        total = 0
        # Term 1: triangles with one batch edge — one count burst per
        # shared-first-endpoint run.
        e = _sorted_canonical(edges)
        for u, i, j in iter_shared_first_runs(e):
            ctx.begin_task()
            total += int(dynamic.neighborhood_counts(u, e[i:j, 1]).sum())
        # Term 2: pairs of batch edges sharing an endpoint, closed by a
        # G1 edge.  Σ_{v∈S_u} |S_u ∩ N(v)| counts each closed pair
        # twice.
        for u, batch_nbrs in _incidence(e).items():
            if len(batch_nbrs) < 2:
                continue
            ctx.begin_task()
            s_id = ctx.create_set(sorted(batch_nbrs), universe=dynamic.universe)
            counts = ctx.intersect_count_batch(
                s_id, [dynamic.neighborhood(v) for v in batch_nbrs]
            )
            total += int(counts.sum()) // 2
            ctx.free(s_id)
        # Term 3: triangles formed entirely by batch edges (host-side;
        # the batch is tiny relative to the graph).
        adj = _batch_adjacency(e)
        tri3 = 0
        host_ops = 0
        for u, v in e:
            common = adj[int(u)] & adj[int(v)]
            tri3 += len(common)
            host_ops += min(len(adj[int(u)]), len(adj[int(v)]))
        ctx.charge_host_ops(2 * len(e) + host_ops)
        return total + tri3 // 3


class IncrementalClusteringCoefficients(StreamMaintainer):
    """Maintains per-vertex triangle counts (and thus local clustering
    coefficients).  Needs the identities of the closing vertices, so it
    uses the materializing batched intersection instead of count
    bursts."""

    def __init__(self, dynamic, *, counts: np.ndarray | None = None):
        ensure_live_view(dynamic)
        if counts is None:
            counts = local_triangle_counts(dynamic, dynamic.ctx)
        self.counts = counts.astype(np.int64, copy=True)

    def on_deletions(self, dynamic, edges: np.ndarray) -> None:
        self._update(dynamic, edges, -1)

    def on_insertions(self, dynamic, edges: np.ndarray) -> None:
        self._update(dynamic, edges, +1)

    def _update(self, dynamic, edges: np.ndarray, sign: int) -> None:
        if len(edges) == 0:
            return
        ctx = dynamic.ctx
        T = self.counts
        e = _sorted_canonical(edges)
        # Term 1: materialize N_G1(u) ∩ N_G1(v) per batch edge, batched
        # over shared-u runs; every closing vertex w gains a triangle.
        for u, i, j in iter_shared_first_runs(e):
            ctx.begin_task()
            vs = [int(x) for x in e[i:j, 1]]
            shared_ids = ctx.intersect_batch(
                dynamic.neighborhood(u), [dynamic.neighborhood(v) for v in vs]
            )
            for v, sid in zip(vs, shared_ids):
                ws = ctx.elements(sid)
                if ws.size:
                    np.add.at(T, ws, sign)
                    T[u] += sign * ws.size
                    T[v] += sign * ws.size
                ctx.free(sid)
        # Term 2: adjacent batch-edge pairs closed by a G1 edge; each
        # pair (v, w) surfaces twice, keep the w > v occurrence.
        for u, batch_nbrs in _incidence(e).items():
            if len(batch_nbrs) < 2:
                continue
            ctx.begin_task()
            batch_nbrs = sorted(batch_nbrs)
            s_id = ctx.create_set(batch_nbrs, universe=dynamic.universe)
            closed = ctx.intersect_batch(
                s_id, [dynamic.neighborhood(v) for v in batch_nbrs]
            )
            for v, sid in zip(batch_nbrs, closed):
                ws = ctx.elements(sid)
                for w in ws[ws > v]:
                    T[u] += sign
                    T[v] += sign
                    T[int(w)] += sign
                ctx.free(sid)
            ctx.free(s_id)
        # Term 3: triangles entirely inside the batch (host-side).
        adj = _batch_adjacency(e)
        host_ops = 0
        for u, v in e:
            u, v = int(u), int(v)
            host_ops += min(len(adj[u]), len(adj[v]))
            for w in adj[u] & adj[v]:
                if w > v:
                    T[u] += sign
                    T[v] += sign
                    T[w] += sign
        ctx.charge_host_ops(2 * len(e) + host_ops)

    @property
    def triangle_count(self) -> int:
        return int(self.counts.sum()) // 3

    def coefficients(self, dynamic) -> np.ndarray:
        return clustering_coefficients_from_counts(
            self.counts, degrees_of(dynamic)
        )


class IncrementalLinkPrediction(StreamMaintainer):
    """Maintains similarity scores for a fixed candidate-pair
    watchlist.  A pair's score can only change when a batch touches one
    of its endpoints' neighborhoods, so only those pairs are re-scored
    (batched over shared-first-endpoint runs) against the post-batch
    graph."""

    def __init__(
        self,
        dynamic,
        pairs: np.ndarray,
        *,
        measure: str = "jaccard",
        scores: np.ndarray | None = None,
    ):
        ensure_live_view(dynamic)
        order = np.lexsort((pairs[:, 1], pairs[:, 0]))
        self.pairs = np.asarray(pairs, dtype=np.int64)[order]
        self.measure = measure
        if scores is None:
            scores = watchlist_scores(
                dynamic, dynamic.ctx, self.pairs, measure=measure
            )
        self.scores = np.asarray(scores, dtype=np.float64).copy()

    def on_applied(self, dynamic, touched: np.ndarray) -> None:
        if touched.size == 0:
            return
        mask = np.isin(self.pairs[:, 0], touched) | np.isin(
            self.pairs[:, 1], touched
        )
        ctx = dynamic.ctx
        # Affected-pair resolution is host-side bookkeeping over an
        # inverted endpoint index (vertex -> watchlist pairs): one
        # index lookup per touched vertex.
        host_ops = 2.0 * touched.size
        if self.measure not in COUNT_MEASURES:
            # Shared-neighbor measures (Adamic-Adar, Resource
            # Allocation) weight each shared neighbor by its degree, so
            # a pair is also affected when a touched vertex is adjacent
            # to both endpoints (its degree changed).  Endpoint changes
            # of w itself are already covered by the endpoint mask.
            # Modeled as one neighborhood walk per touched vertex
            # (streaming N(w) against the endpoint index).
            a, b = self.pairs[:, 0], self.pairs[:, 1]
            for w in touched:
                nbrs = ctx.value(dynamic.neighborhood(int(w)))
                mask |= nbrs.contains_many(a) & nbrs.contains_many(b)
                host_ops += nbrs.cardinality
        if not mask.any():
            ctx.charge_host_ops(host_ops)
            return
        idx = np.flatnonzero(mask)
        ctx.charge_host_ops(host_ops + 2.0 * idx.size)
        affected = self.pairs[idx]
        for u, i, j in iter_shared_first_runs(affected):
            ctx.begin_task()
            run = affected[i:j]
            self.scores[idx[i:j]] = similarity_batch_on(
                ctx, dynamic, u, run[:, 1], measure=self.measure
            )

    def top_pairs(self, k: int) -> np.ndarray:
        """The k highest-scoring watchlist pairs (stable order)."""
        top = np.argsort(-self.scores, kind="stable")[:k]
        return self.pairs[np.sort(top)]
