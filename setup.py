from setuptools import setup

# Minimal shim: allows `pip install -e . --no-use-pep517` in offline
# environments that lack the `wheel` package.  All metadata lives in
# pyproject.toml.
setup()
